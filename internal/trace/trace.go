// Package trace records named time series during simulation runs and
// renders them as CSV (for external plotting) or compact ASCII charts (for
// terminal inspection). Every figure-reproduction harness in this
// repository emits its data through a Recorder.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Series is one named time series.
type Series struct {
	Name string
	T    []float64 // seconds
	V    []float64

	// rec points at the owning recorder for interned series (nil on a
	// standalone Series); gen is the recorder cycle the series last
	// registered in. Together they let the first sample of each cycle
	// enter the series into the recorder's output order, so handles stay
	// valid across Recorder.Reset and output order always equals
	// first-sample order — exactly what per-sample Add produced before
	// handles existed.
	rec *Recorder
	gen uint64
}

// Add appends one sample.
func (s *Series) Add(t, v float64) {
	if s.rec != nil && s.gen != s.rec.gen {
		s.gen = s.rec.gen
		s.rec.order = append(s.rec.order, s.Name)
	}
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.T) }

// Last returns the most recent value, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.V) == 0 {
		return 0
	}
	return s.V[len(s.V)-1]
}

// Values returns the raw values slice (not a copy; callers must not
// mutate).
func (s *Series) Values() []float64 { return s.V }

// Window returns the values sampled in the half-open time interval
// [from, to). It allocates a fresh slice; hot callers should use
// WindowBounds and slice V directly.
func (s *Series) Window(from, to float64) []float64 {
	var out []float64
	for i, t := range s.T {
		if t >= from && t < to {
			out = append(out, s.V[i])
		}
	}
	return out
}

// WindowBounds returns the index range [lo, hi) of the samples in the
// half-open time interval [from, to), so callers can view s.V[lo:hi]
// without copying. Timestamps are appended by simulation runs in
// nondecreasing order; WindowBounds requires that and locates the range by
// binary search, matching Window's selection exactly on such series.
func (s *Series) WindowBounds(from, to float64) (lo, hi int) {
	lo = sort.SearchFloat64s(s.T, from)
	hi = lo + sort.SearchFloat64s(s.T[lo:], to)
	return lo, hi
}

// Recorder collects named series in insertion order. A Recorder is
// reusable: Reset truncates every series and starts a new registration
// cycle, after which it behaves exactly like a fresh recorder while
// recycling the sample buffers of any name that registers again.
type Recorder struct {
	//lint:sticky interned handles survive Reset by contract; Reset truncates each series through all
	series map[string]*Series
	order  []string
	all    []*Series // every series ever interned, for Reset
	gen    uint64    // current registration cycle, starts at 1
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series), gen: 1}
}

// Handle interns the named series and returns it, creating it on first
// use. Hot loops call Handle once at setup and append through the returned
// pointer, skipping the per-sample map lookup that Add pays. Interning
// alone does not register the series: it enters the output order on its
// first sample of the cycle, so a pre-interned handle that never samples
// is invisible. Handles stay valid across Reset, keeping their grown
// buffers.
func (r *Recorder) Handle(name string) *Series {
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name, rec: r}
		r.series[name] = s
		r.all = append(r.all, s)
	}
	return s
}

// HandleBytes is Handle keyed by a byte-slice view of the name. The
// steady-state path — name already interned — goes through the
// compiler-recognized m[string(b)] lookup form and allocates nothing;
// only a first encounter copies the bytes into a permanent string.
// Decoders that read names as views into an encoded trace rebuild
// recorders through it without per-series string garbage.
func (r *Recorder) HandleBytes(name []byte) *Series {
	if s, ok := r.series[string(name)]; ok {
		return s
	}
	return r.Handle(string(name))
}

// Add appends a sample to the named series, creating it on first use.
func (r *Recorder) Add(name string, t, v float64) {
	r.Handle(name).Add(t, v)
}

// Reset truncates every series (keeping capacity) and clears the
// registration order, returning the recorder to its freshly-constructed
// observable state. Handles obtained before the reset remain valid.
func (r *Recorder) Reset() {
	for _, s := range r.all {
		s.T = s.T[:0]
		s.V = s.V[:0]
	}
	r.order = r.order[:0]
	r.gen++
}

// Clone returns an independent deep copy: same series, same samples, same
// registration order, byte-identical CSV output. Batch drivers use it to
// retain a session-owned recorder's contents past the session's next run.
func (r *Recorder) Clone() *Recorder { return r.CloneInto(nil) }

// CloneInto deep-copies the recorder into dst and returns it, recycling
// dst's interned series and their sample buffers: once dst has seen a
// campaign's series names and sample counts, further CloneInto calls
// allocate nothing. A nil dst makes a fresh recorder (Clone semantics).
// dst must not be the recorder the copy is taken from, nor one still owned
// by a live session. The copy is independent of r and byte-identical in
// CSV output.
func (r *Recorder) CloneInto(dst *Recorder) *Recorder {
	if dst == nil {
		dst = NewRecorder()
	} else {
		dst.Reset()
	}
	for _, name := range r.order {
		s := r.series[name]
		cs := dst.Handle(name)
		cs.gen = dst.gen
		dst.order = append(dst.order, name)
		cs.T = append(cs.T[:0], s.T...)
		cs.V = append(cs.V[:0], s.V...)
	}
	return dst
}

// Series returns the named series, or nil if it holds no samples — an
// interned-but-empty handle is indistinguishable from a never-written
// name, exactly as before handles existed.
func (r *Recorder) Series(name string) *Series {
	s := r.series[name]
	if s == nil || len(s.T) == 0 {
		return nil
	}
	return s
}

// EachSeries calls f for every series holding samples, in registration
// order — the same series, in the same order, that WriteCSV emits. Unlike
// Names it allocates nothing, so encoders can walk a recorder per cycle
// without garbage.
func (r *Recorder) EachSeries(f func(s *Series)) {
	for _, name := range r.order {
		if s := r.series[name]; len(s.T) > 0 {
			f(s)
		}
	}
}

// Names returns the names of the series holding samples, in registration
// order. Pre-interned handles that never received a sample are omitted,
// so output layout does not depend on which handles a setup path interned.
func (r *Recorder) Names() []string {
	out := make([]string, 0, len(r.order))
	for _, name := range r.order {
		if len(r.series[name].T) > 0 {
			out = append(out, name)
		}
	}
	return out
}

// csvFlushAt bounds the encoder's in-memory buffer: rows accumulate until
// the buffer passes this size, then flush in one Write. Large enough that
// a whole scenario trace usually flushes once.
const csvFlushAt = 1 << 15

// WriteCSV emits the recorder in long format: series,t,value — one row per
// sample, series in insertion order. Rows are encoded with
// strconv.AppendFloat into a reused buffer (byte-identical to the fmt
// verbs %.6f / %.6g) and written in large chunks.
func (r *Recorder) WriteCSV(w io.Writer) error {
	buf := make([]byte, 0, csvFlushAt+256)
	buf = append(buf, "series,t,value\n"...)
	for _, name := range r.order {
		s := r.series[name]
		for i := range s.T {
			buf = append(buf, name...)
			buf = append(buf, ',')
			buf = strconv.AppendFloat(buf, s.T[i], 'f', 6, 64)
			buf = append(buf, ',')
			buf = strconv.AppendFloat(buf, s.V[i], 'g', 6, 64)
			buf = append(buf, '\n')
			if len(buf) >= csvFlushAt {
				if _, err := w.Write(buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// WriteWideCSV emits t plus one column per selected series, aligning rows
// on the union of timestamps (missing samples are left empty). Pass no
// names to include every series that holds samples.
func (r *Recorder) WriteWideCSV(w io.Writer, names ...string) error {
	if len(names) == 0 {
		names = r.Names()
	}
	// Dense column handles and cursors, resolved once: the inner loop
	// indexes slices instead of paying a string-keyed map lookup per cell.
	cols := make([]*Series, len(names))
	for i, name := range names {
		cols[i] = r.series[name] // nil for unknown names: empty column
	}
	stamps := map[float64]bool{}
	for _, s := range cols {
		if s != nil {
			for _, t := range s.T {
				stamps[t] = true
			}
		}
	}
	ts := make([]float64, 0, len(stamps))
	for t := range stamps {
		ts = append(ts, t)
	}
	sort.Float64s(ts)
	buf := make([]byte, 0, csvFlushAt+256)
	buf = append(buf, 't')
	for _, name := range names {
		buf = append(buf, ',')
		buf = append(buf, name...)
	}
	buf = append(buf, '\n')
	// Per-series cursor advances monotonically with sorted timestamps.
	cursors := make([]int, len(names))
	for _, t := range ts {
		buf = strconv.AppendFloat(buf, t, 'f', 6, 64)
		for ci, s := range cols {
			buf = append(buf, ',')
			if s == nil {
				continue
			}
			i := cursors[ci]
			for i < len(s.T) && s.T[i] < t {
				i++
			}
			// Several samples can share a timestamp; emit the
			// last one so none is silently dropped on later rows.
			// Exact match is intended: t is drawn from the same
			// stored values it is compared against.
			has := false
			v := 0.0
			//lint:allow floateq matching identical stored values, not computed ones
			for i < len(s.T) && s.T[i] == t {
				v = s.V[i]
				has = true
				i++
			}
			cursors[ci] = i
			if has {
				buf = strconv.AppendFloat(buf, v, 'g', 6, 64)
			}
		}
		buf = append(buf, '\n')
		if len(buf) >= csvFlushAt {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Sparkline renders the series as a one-line ASCII chart of the given
// width, downsampling by bucket means. It returns "" for an empty series.
func Sparkline(s *Series, width int) string {
	if s == nil || len(s.V) == 0 || width <= 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range s.V {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	span := hi - lo
	var b strings.Builder
	n := len(s.V)
	for i := 0; i < width; i++ {
		start := i * n / width
		end := (i + 1) * n / width
		if end <= start {
			end = start + 1
		}
		if start >= n {
			break
		}
		sum := 0.0
		cnt := 0
		for j := start; j < end && j < n; j++ {
			sum += s.V[j]
			cnt++
		}
		mean := sum / float64(cnt)
		idx := 0
		if span > 0 {
			idx = int((mean - lo) / span * float64(len(levels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// PlotASCII renders the series as a multi-row ASCII chart with a value
// axis, for quick terminal inspection of figure shapes.
func PlotASCII(s *Series, width, height int) string {
	if s == nil || len(s.V) == 0 || width <= 0 || height <= 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range s.V {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	//lint:allow floateq exact degenerate-range guard; any nonzero span plots fine
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	n := len(s.V)
	for i := 0; i < width; i++ {
		start := i * n / width
		end := (i + 1) * n / width
		if end <= start {
			end = start + 1
		}
		if start >= n {
			break
		}
		sum := 0.0
		cnt := 0
		for j := start; j < end && j < n; j++ {
			sum += s.V[j]
			cnt++
		}
		mean := sum / float64(cnt)
		row := int((hi - mean) / (hi - lo) * float64(height-1))
		grid[row][i] = '*'
	}
	var b strings.Builder
	for i, row := range grid {
		label := ""
		switch i {
		case 0:
			label = fmt.Sprintf("%8.3f ", hi)
		case height - 1:
			label = fmt.Sprintf("%8.3f ", lo)
		default:
			label = strings.Repeat(" ", 9)
		}
		b.WriteString(label)
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}
