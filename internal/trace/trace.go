// Package trace records named time series during simulation runs and
// renders them as CSV (for external plotting) or compact ASCII charts (for
// terminal inspection). Every figure-reproduction harness in this
// repository emits its data through a Recorder.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named time series.
type Series struct {
	Name string
	T    []float64 // seconds
	V    []float64
}

// Add appends one sample.
func (s *Series) Add(t, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.T) }

// Last returns the most recent value, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.V) == 0 {
		return 0
	}
	return s.V[len(s.V)-1]
}

// Values returns the raw values slice (not a copy; callers must not
// mutate).
func (s *Series) Values() []float64 { return s.V }

// Window returns the values sampled in the half-open time interval
// [from, to). It allocates a fresh slice; hot callers should use
// WindowBounds and slice V directly.
func (s *Series) Window(from, to float64) []float64 {
	var out []float64
	for i, t := range s.T {
		if t >= from && t < to {
			out = append(out, s.V[i])
		}
	}
	return out
}

// WindowBounds returns the index range [lo, hi) of the samples in the
// half-open time interval [from, to), so callers can view s.V[lo:hi]
// without copying. Timestamps are appended by simulation runs in
// nondecreasing order; WindowBounds requires that and locates the range by
// binary search, matching Window's selection exactly on such series.
func (s *Series) WindowBounds(from, to float64) (lo, hi int) {
	lo = sort.SearchFloat64s(s.T, from)
	hi = lo + sort.SearchFloat64s(s.T[lo:], to)
	return lo, hi
}

// Recorder collects named series in insertion order.
type Recorder struct {
	series map[string]*Series
	order  []string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Add appends a sample to the named series, creating it on first use.
func (r *Recorder) Add(name string, t, v float64) {
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name}
		r.series[name] = s
		r.order = append(r.order, name)
	}
	s.Add(t, v)
}

// Series returns the named series, or nil if never written.
func (r *Recorder) Series(name string) *Series { return r.series[name] }

// Names returns the series names in insertion order.
func (r *Recorder) Names() []string {
	return append([]string(nil), r.order...)
}

// WriteCSV emits the recorder in long format: series,t,value — one row per
// sample, series in insertion order.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "series,t,value"); err != nil {
		return err
	}
	for _, name := range r.order {
		s := r.series[name]
		for i := range s.T {
			if _, err := fmt.Fprintf(w, "%s,%.6f,%.6g\n", name, s.T[i], s.V[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteWideCSV emits t plus one column per selected series, aligning rows
// on the union of timestamps (missing samples are left empty). Pass no
// names to include every series.
func (r *Recorder) WriteWideCSV(w io.Writer, names ...string) error {
	if len(names) == 0 {
		names = r.order
	}
	stamps := map[float64]bool{}
	for _, name := range names {
		if s := r.series[name]; s != nil {
			for _, t := range s.T {
				stamps[t] = true
			}
		}
	}
	ts := make([]float64, 0, len(stamps))
	for t := range stamps {
		ts = append(ts, t)
	}
	sort.Float64s(ts)
	if _, err := fmt.Fprintf(w, "t,%s\n", strings.Join(names, ",")); err != nil {
		return err
	}
	// Per-series cursor advances monotonically with sorted timestamps.
	cursor := make(map[string]int, len(names))
	for _, t := range ts {
		row := make([]string, 0, len(names)+1)
		row = append(row, fmt.Sprintf("%.6f", t))
		for _, name := range names {
			s := r.series[name]
			cell := ""
			if s != nil {
				i := cursor[name]
				for i < len(s.T) && s.T[i] < t {
					i++
				}
				// Several samples can share a timestamp; emit the
				// last one so none is silently dropped on later rows.
				// Exact match is intended: t is drawn from the same
				// stored values it is compared against.
				//lint:allow floateq matching identical stored values, not computed ones
				for i < len(s.T) && s.T[i] == t {
					cell = fmt.Sprintf("%.6g", s.V[i])
					i++
				}
				cursor[name] = i
			}
			row = append(row, cell)
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Sparkline renders the series as a one-line ASCII chart of the given
// width, downsampling by bucket means. It returns "" for an empty series.
func Sparkline(s *Series, width int) string {
	if s == nil || len(s.V) == 0 || width <= 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range s.V {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	span := hi - lo
	var b strings.Builder
	n := len(s.V)
	for i := 0; i < width; i++ {
		start := i * n / width
		end := (i + 1) * n / width
		if end <= start {
			end = start + 1
		}
		if start >= n {
			break
		}
		sum := 0.0
		cnt := 0
		for j := start; j < end && j < n; j++ {
			sum += s.V[j]
			cnt++
		}
		mean := sum / float64(cnt)
		idx := 0
		if span > 0 {
			idx = int((mean - lo) / span * float64(len(levels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// PlotASCII renders the series as a multi-row ASCII chart with a value
// axis, for quick terminal inspection of figure shapes.
func PlotASCII(s *Series, width, height int) string {
	if s == nil || len(s.V) == 0 || width <= 0 || height <= 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range s.V {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	//lint:allow floateq exact degenerate-range guard; any nonzero span plots fine
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	n := len(s.V)
	for i := 0; i < width; i++ {
		start := i * n / width
		end := (i + 1) * n / width
		if end <= start {
			end = start + 1
		}
		if start >= n {
			break
		}
		sum := 0.0
		cnt := 0
		for j := start; j < end && j < n; j++ {
			sum += s.V[j]
			cnt++
		}
		mean := sum / float64(cnt)
		row := int((hi - mean) / (hi - lo) * float64(height-1))
		grid[row][i] = '*'
	}
	var b strings.Builder
	for i, row := range grid {
		label := ""
		switch i {
		case 0:
			label = fmt.Sprintf("%8.3f ", hi)
		case height - 1:
			label = fmt.Sprintf("%8.3f ", lo)
		default:
			label = strings.Repeat(" ", 9)
		}
		b.WriteString(label)
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}
