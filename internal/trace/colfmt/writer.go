package colfmt

import (
	"encoding/binary"
	"io"
	"math"

	"github.com/autoe2e/autoe2e/internal/trace"
)

// appendTimeColumn encodes timestamps by double-delta coding their bit
// patterns (see the package comment) and returns the extended buffer.
//
//lint:noalloc append into caller-grown buffer; steady-state campaigns reuse capacity
func appendTimeColumn(dst []byte, ts []float64) []byte {
	var prev, prevDelta uint64
	for _, t := range ts {
		bits := math.Float64bits(t)
		delta := bits - prev
		dst = binary.AppendUvarint(dst, zigzag(int64(delta-prevDelta)))
		prev, prevDelta = bits, delta
	}
	return dst
}

// appendValueColumn encodes values by XORing each bit pattern with its
// predecessor's and returns the extended buffer.
//
//lint:noalloc append into caller-grown buffer; steady-state campaigns reuse capacity
func appendValueColumn(dst []byte, vs []float64) []byte {
	var prev uint64
	for _, v := range vs {
		bits := math.Float64bits(v)
		dst = binary.AppendUvarint(dst, bits^prev)
		prev = bits
	}
	return dst
}

// AppendRun encodes one run record — the recorder's current contents, in
// registration order — onto dst and returns the extended buffer. It is
// the core encoder: once dst has grown to a campaign's working size,
// appending further runs allocates nothing. The file magic is not
// included; see Writer for whole files.
//
//lint:noalloc appends into a caller-grown buffer; the series closures stay on the stack
func AppendRun(dst []byte, rec *trace.Recorder) []byte {
	nSeries := 0
	rec.EachSeries(func(*trace.Series) { nSeries++ })
	dst = append(dst, runMarker)
	dst = binary.AppendUvarint(dst, uint64(nSeries))
	rec.EachSeries(func(s *trace.Series) {
		dst = binary.AppendUvarint(dst, uint64(len(s.Name)))
		dst = append(dst, s.Name...)
		dst = binary.AppendUvarint(dst, uint64(len(s.T)))

		// Encode each column onto the end of dst, then insert its byte
		// length in front by shifting — columns are long compared to the
		// 1-2 byte shift distance, and it keeps one buffer, no scratch.
		dst = appendColumnWithLen(dst, s.T, appendTimeColumn)
		dst = appendColumnWithLen(dst, s.V, appendValueColumn)
	})
	return dst
}

// appendColumnWithLen appends encode(col) prefixed with its varint byte
// length, using only the tail of dst as scratch.
func appendColumnWithLen(dst []byte, col []float64, encode func([]byte, []float64) []byte) []byte {
	start := len(dst)
	dst = encode(dst, col)
	colLen := len(dst) - start
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(colLen))
	dst = append(dst, lenBuf[:n]...) // grow by the shift distance
	copy(dst[start+n:], dst[start:start+colLen])
	copy(dst[start:], lenBuf[:n])
	return dst
}

// Writer streams runs into an io.Writer, one self-delimiting record per
// WriteRun call, never holding more than one encoded run in memory. The
// magic header is written before the first run. Writer is sticky on
// error: after any write failure every call returns that first error.
type Writer struct {
	w       io.Writer
	scratch []byte
	started bool
	err     error
}

// NewWriter returns a Writer appending to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteRun appends one run record with the recorder's current contents.
func (w *Writer) WriteRun(rec *trace.Recorder) error {
	if w.err != nil {
		return w.err
	}
	w.scratch = w.scratch[:0]
	if !w.started {
		w.scratch = append(w.scratch, magic...)
	}
	w.scratch = AppendRun(w.scratch, rec)
	if _, err := w.w.Write(w.scratch); err != nil {
		w.err = err
		return err
	}
	w.started = true
	return nil
}

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }
