package colfmt

import (
	"bytes"
	"math"
	"testing"

	"github.com/autoe2e/autoe2e/internal/simtime"
	"github.com/autoe2e/autoe2e/internal/trace"
)

// adversarialFloats is the codec's bit-exactness gauntlet: NaNs with
// distinct payloads, ±Inf, ±0, subnormals, and exponent-boundary
// neighbors.
var adversarialFloats = []float64{
	0, math.Copysign(0, -1),
	math.NaN(), math.Float64frombits(0x7ff8000000000001), math.Float64frombits(0xfff0000000000042),
	math.Inf(1), math.Inf(-1),
	math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	math.Float64frombits(0x000fffffffffffff), // largest subnormal
	math.MaxFloat64, -math.MaxFloat64,
	1, math.Nextafter(1, 2), math.Nextafter(1, 0),
	2, math.Nextafter(2, 0), // binade boundary
	1e-300, 1e300, -3.14159, 0.1, 0.2, 0.30000000000000004,
}

func requireBitsEqual(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: sample %d = %x (%v), want %x (%v)", label, i,
				math.Float64bits(got[i]), got[i], math.Float64bits(want[i]), want[i])
		}
	}
}

func roundTripColumns(t *testing.T, ts, vs []float64) {
	t.Helper()
	tcol := appendTimeColumn(nil, ts)
	gotT, err := decodeTimeColumn(tcol, 0, len(tcol), len(ts), nil)
	if err != nil {
		t.Fatalf("decodeTimeColumn: %v", err)
	}
	requireBitsEqual(t, "timestamp column", ts, gotT)

	vcol := appendValueColumn(nil, vs)
	gotV, err := decodeValueColumn(vcol, 0, len(vcol), len(vs), nil)
	if err != nil {
		t.Fatalf("decodeValueColumn: %v", err)
	}
	requireBitsEqual(t, "value column", vs, gotV)
}

func TestCodecRoundTripAdversarial(t *testing.T) {
	roundTripColumns(t, adversarialFloats, adversarialFloats)

	// Non-monotone timestamps are not produced by simulation runs but the
	// codec must still round-trip them exactly.
	reversed := make([]float64, len(adversarialFloats))
	for i, v := range adversarialFloats {
		reversed[len(reversed)-1-i] = v
	}
	roundTripColumns(t, reversed, reversed)
}

func TestCodecRoundTripRandom(t *testing.T) {
	rng := simtime.NewRand(11)
	for round := 0; round < 50; round++ {
		n := rng.Intn(200)
		ts := make([]float64, n)
		vs := make([]float64, n)
		tick := 0.0
		for i := 0; i < n; i++ {
			tick += float64(rng.Intn(1000)) / 1000
			ts[i] = tick
			vs[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
		}
		roundTripColumns(t, ts, vs)
	}
}

// sampleRecorder builds a recorder shaped like a closed-loop control
// trace: periodic timestamps, slowly-varying utilizations, long constant
// stretches, and a spiky miss-ratio series.
func sampleRecorder(seed int64, seconds int) *trace.Recorder {
	rng := simtime.NewRand(seed)
	rec := trace.NewRecorder()
	util := rec.Handle("util.ecu0")
	prec := rec.Handle("precision.total")
	miss := rec.Handle("missratio.overall")
	u := 0.55
	for i := 0; i < seconds*10; i++ {
		tick := float64(i) * 0.1
		u += (0.7-u)*0.1 + rng.NormFloat64()*0.01
		util.Add(tick, u)
		prec.Add(tick, 7.5)
		m := 0.0
		if rng.Intn(20) == 0 {
			m = rng.Float64() * 0.3
		}
		miss.Add(tick, m)
	}
	return rec
}

func TestRunRoundTripCSVIdentical(t *testing.T) {
	rec := sampleRecorder(3, 60)
	var file bytes.Buffer
	w := NewWriter(&file)
	if err := w.WriteRun(rec); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(file.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRuns() != 1 {
		t.Fatalf("NumRuns = %d, want 1", r.NumRuns())
	}
	run, err := r.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	decoded := trace.NewRecorder()
	if err := run.DecodeInto(decoded); err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := rec.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	if err := decoded.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("decoded recorder's CSV diverged from the original")
	}
}

// TestWriterStreamsRuns: a campaign appended run by run decodes back run
// by run, each byte-identical, and a recycled destination recorder works
// across runs of different content.
func TestWriterStreamsRuns(t *testing.T) {
	const runs = 5
	var file bytes.Buffer
	w := NewWriter(&file)
	var wantCSV [][]byte
	for i := 0; i < runs; i++ {
		rec := sampleRecorder(int64(i+1), 10+i)
		var csv bytes.Buffer
		if err := rec.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		wantCSV = append(wantCSV, csv.Bytes())
		if err := w.WriteRun(rec); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(file.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRuns() != runs {
		t.Fatalf("NumRuns = %d, want %d", r.NumRuns(), runs)
	}
	dst := trace.NewRecorder()
	for i := 0; i < runs; i++ {
		run, err := r.Run(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := run.DecodeInto(dst); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := dst.WriteCSV(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantCSV[i], got.Bytes()) {
			t.Fatalf("run %d: decoded CSV diverged", i)
		}
	}
}

// TestLazyColumnAccess: Columns decodes one series without touching the
// others, reusing caller buffers.
func TestLazyColumnAccess(t *testing.T) {
	rec := sampleRecorder(7, 30)
	data := AppendRun([]byte(magic), rec)
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	run, err := r.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if run.NumSeries() != 3 {
		t.Fatalf("NumSeries = %d, want 3", run.NumSeries())
	}
	var ts, vs []float64
	for j := 0; j < run.NumSeries(); j++ {
		name := run.Name(j)
		src := rec.Series(name)
		if src == nil {
			t.Fatalf("unknown decoded series %q", name)
		}
		if run.Len(j) != src.Len() {
			t.Fatalf("series %q: Len = %d, want %d", name, run.Len(j), src.Len())
		}
		ts, vs, err = run.Columns(j, ts, vs)
		if err != nil {
			t.Fatal(err)
		}
		requireBitsEqual(t, name+" timestamps", src.T, ts)
		requireBitsEqual(t, name+" values", src.V, vs)
	}
}

// TestAppendRunSteadyStateAllocs: once the campaign buffer has grown,
// appending further runs allocates only the encoder's fixed overhead.
func TestAppendRunSteadyStateAllocs(t *testing.T) {
	rec := sampleRecorder(1, 30)
	buf := AppendRun(nil, rec)
	cap0 := cap(buf)
	allocs := testing.AllocsPerRun(10, func() {
		buf = AppendRun(buf[:0], rec)
	})
	if cap(buf) != cap0 {
		t.Fatalf("campaign buffer regrew: cap %d -> %d", cap0, cap(buf))
	}
	if allocs > 1 {
		t.Errorf("warm AppendRun allocates %v allocs/op, want <= 1", allocs)
	}
}

// TestCampaignFootprint pins the acceptance ratio on a realistic trace:
// the binary run record must be at least 4x smaller than the CSV the
// in-memory accumulation path would retain.
func TestCampaignFootprint(t *testing.T) {
	rec := sampleRecorder(5, 120)
	var csv bytes.Buffer
	if err := rec.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	bin := AppendRun(nil, rec)
	ratio := float64(csv.Len()) / float64(len(bin))
	t.Logf("CSV %d bytes, columnar %d bytes, ratio %.1fx", csv.Len(), len(bin), ratio)
	if ratio < 4 {
		t.Errorf("columnar trace only %.2fx smaller than CSV, want >= 4x", ratio)
	}
}

// TestCorruptInputs: truncations and bit flips must error, never panic or
// over-read.
func TestCorruptInputs(t *testing.T) {
	rec := sampleRecorder(2, 5)
	data := AppendRun([]byte(magic), rec)
	if _, err := NewReader(data[:2]); err == nil {
		t.Error("short magic accepted")
	}
	if _, err := NewReader([]byte("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	for cut := len(magic) + 1; cut < len(data); cut += 7 {
		if _, err := NewReader(data[:cut]); err == nil {
			// Some prefixes happen to end on a record boundary; only the
			// marker byte itself is always invalid to drop mid-series.
			if r, _ := NewReader(data[:cut]); r != nil && r.NumRuns() == 1 {
				continue
			}
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), data...)
	bad[len(magic)] = 'X' // break the run marker
	if _, err := NewReader(bad); err == nil {
		t.Error("bad run marker accepted")
	}
}

// TestRunIntoRecycles: one Run value reused across runs of different
// shapes must parse each correctly — the recycled header scratch from a
// wider run must not leak stale series into a narrower one.
func TestRunIntoRecycles(t *testing.T) {
	var file bytes.Buffer
	w := NewWriter(&file)
	recs := []*trace.Recorder{
		sampleRecorder(1, 20),
		trace.NewRecorder(), // empty run: zero series
		sampleRecorder(9, 5),
	}
	for _, rec := range recs {
		if err := w.WriteRun(rec); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(file.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var run *Run
	dst := trace.NewRecorder()
	for i, rec := range recs {
		run, err = r.RunInto(i, run)
		if err != nil {
			t.Fatal(err)
		}
		if err := run.DecodeInto(dst); err != nil {
			t.Fatal(err)
		}
		var want, got bytes.Buffer
		if err := rec.WriteCSV(&want); err != nil {
			t.Fatal(err)
		}
		if err := dst.WriteCSV(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("run %d: decoded CSV diverged through recycled Run", i)
		}
		if names := rec.Names(); len(names) > 0 && run.Name(0) != names[0] {
			t.Fatalf("run %d: Name(0) = %q, want %q", i, run.Name(0), names[0])
		}
	}
}

// TestDecodeSteadyStateAllocs is the allocation gate for the read path:
// once a recycled Run and destination recorder have seen a run's shape,
// re-parsing headers and decoding every column must allocate nothing —
// a campaign scan's per-run cost is decode work, not garbage.
func TestDecodeSteadyStateAllocs(t *testing.T) {
	rec := sampleRecorder(4, 60)
	var file bytes.Buffer
	if err := NewWriter(&file).WriteRun(rec); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(file.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	run, err := r.Run(0) // sizing pass for the header scratch
	if err != nil {
		t.Fatal(err)
	}
	dst := trace.NewRecorder()
	if err := run.DecodeInto(dst); err != nil { // sizing pass for dst
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		run, err = r.RunInto(0, run)
		if err != nil {
			t.Fatal(err)
		}
		if err := run.DecodeInto(dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state decode allocates %.1f times per run, want 0", allocs)
	}
}
