package colfmt

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"github.com/autoe2e/autoe2e/internal/trace"
)

// fuzzFloats reinterprets raw fuzz bytes as float64 bit patterns, so the
// corpus explores NaN payloads, subnormals and ±Inf directly.
func fuzzFloats(raw []byte) []float64 {
	fs := make([]float64, 0, len(raw)/8)
	for len(raw) >= 8 {
		fs = append(fs, math.Float64frombits(binary.LittleEndian.Uint64(raw)))
		raw = raw[8:]
	}
	return fs
}

func seedCorpus(f *testing.F) {
	f.Add([]byte{})
	var monotone, adversarial []byte
	for i := 0; i < 16; i++ {
		monotone = binary.LittleEndian.AppendUint64(monotone, math.Float64bits(float64(i)*0.1))
	}
	f.Add(monotone)
	for _, v := range adversarialFloats {
		adversarial = binary.LittleEndian.AppendUint64(adversarial, math.Float64bits(v))
	}
	f.Add(adversarial)
}

// FuzzCodecRoundTrip: encode→decode of both column codecs must be
// bitwise-identical for arbitrary float64 sequences — monotone or not.
func FuzzCodecRoundTrip(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, raw []byte) {
		fs := fuzzFloats(raw)

		tcol := appendTimeColumn(nil, fs)
		ts, err := decodeTimeColumn(tcol, 0, len(tcol), len(fs), nil)
		if err != nil {
			t.Fatalf("decodeTimeColumn: %v", err)
		}
		requireBitsEqual(t, "timestamp column", fs, ts)

		vcol := appendValueColumn(nil, fs)
		vs, err := decodeValueColumn(vcol, 0, len(vcol), len(fs), nil)
		if err != nil {
			t.Fatalf("decodeValueColumn: %v", err)
		}
		requireBitsEqual(t, "value column", fs, vs)
	})
}

// FuzzRunRoundTrip: a whole run record built from fuzzed samples must
// survive Writer→Reader→DecodeInto with byte-identical CSV.
func FuzzRunRoundTrip(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, raw []byte) {
		fs := fuzzFloats(raw)
		rec := trace.NewRecorder()
		a := rec.Handle("fuzz.a")
		b := rec.Handle("fuzz.b")
		for i, v := range fs {
			a.Add(float64(i)*0.1, v)
			if i%2 == 0 {
				b.Add(v, v) // fuzzed, possibly non-monotone timestamps
			}
		}
		var file bytes.Buffer
		if err := NewWriter(&file).WriteRun(rec); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(file.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		run, err := r.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		decoded := trace.NewRecorder()
		if err := run.DecodeInto(decoded); err != nil {
			t.Fatal(err)
		}
		var want, got bytes.Buffer
		if err := rec.WriteCSV(&want); err != nil {
			t.Fatal(err)
		}
		if err := decoded.WriteCSV(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatal("decoded CSV diverged from source recorder")
		}
	})
}

// FuzzReaderRobustness: arbitrary bytes must never panic the reader —
// they either index cleanly or error.
func FuzzReaderRobustness(f *testing.F) {
	rec := trace.NewRecorder()
	h := rec.Handle("s")
	for i := 0; i < 8; i++ {
		h.Add(float64(i), float64(i)*1.5)
	}
	f.Add(AppendRun([]byte(magic), rec))
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		r, err := NewReader(raw)
		if err != nil {
			return
		}
		dst := trace.NewRecorder()
		var ts, vs []float64
		for i := 0; i < r.NumRuns(); i++ {
			run, err := r.Run(i)
			if err != nil {
				continue
			}
			for j := 0; j < run.NumSeries(); j++ {
				if ts, vs, err = run.Columns(j, ts, vs); err != nil {
					break
				}
			}
			_ = run.DecodeInto(dst)
		}
	})
}
