// Package colfmt is the columnar binary trace format for fleet-scale
// campaigns. A trace.Recorder rendered as CSV costs ~25 bytes per sample;
// a 1M-run campaign retained that way does not fit in RAM. This format
// stores each series as two compressed columns and typically shrinks a
// closed-loop control trace by an order of magnitude, with bit-exact
// float64 round-trips (NaN payloads, subnormals and ±Inf included) —
// cmd/trace2csv converts it back to CSV byte-identical to
// trace.Recorder.WriteCSV.
//
// # Layout
//
// All integers are unsigned varints (encoding/binary Uvarint). A file is
// a 4-byte magic followed by any number of self-delimiting run records,
// so writers append one run per campaign cycle without buffering the
// campaign and readers skip runs without decoding their columns:
//
//	file   := "ATC1" run*
//	run    := 'R' nSeries series*
//	series := nameLen name nSamples tLen tcol vLen vcol
//
// Series appear in the recorder's registration order — the order WriteCSV
// emits — so decoding rebuilds a byte-identical recorder.
//
// # Column codecs
//
// Both codecs operate on IEEE-754 bit patterns, never on float values, so
// every float64 — any NaN payload, -0, subnormals, ±Inf — round-trips
// exactly.
//
// tcol is the timestamp column: double-delta coding of the bit patterns
// as wrapping 64-bit integers, each second difference zigzag-varint
// encoded. Simulation timestamps step by a near-constant period, and
// within one binade constant float steps are constant bit-pattern steps,
// so the second difference is almost always zero — one byte per sample,
// with a short burst only when the exponent rolls over.
//
// vcol is the value column: each value's bit pattern XORed with its
// predecessor's (first predecessor 0), varint encoded. Equal neighbors —
// flags, counters, settled utilizations — cost one byte; close neighbors
// share sign, exponent and leading mantissa bits, zeroing the varint's
// high bytes.
package colfmt

import "fmt"

// magic identifies a columnar trace file: AutoE2E Trace, Columnar, v1.
const magic = "ATC1"

// MagicLen is the length of the file magic AppendMagic writes.
const MagicLen = len(magic)

// AppendMagic appends the 4-byte file magic onto dst and returns the
// extended buffer. Streaming producers — the serve HTTP path writes colfmt
// bodies straight from request buffers — use it to open a well-formed
// stream before the first AppendRun record.
//
//lint:noalloc appends into a caller-grown buffer
func AppendMagic(dst []byte) []byte { return append(dst, magic...) }

// runMarker starts every run record; future record kinds get new markers.
const runMarker = 'R'

// corruptf builds the uniform decode error.
func corruptf(off int, format string, args ...any) error {
	return fmt.Errorf("colfmt: corrupt trace at byte %d: %s", off, fmt.Sprintf(format, args...))
}

// zigzag maps a signed difference onto the unsigned varint domain so
// small negative values stay short.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
