package colfmt

import (
	"encoding/binary"
	"math"
	"os"

	"github.com/autoe2e/autoe2e/internal/trace"
)

// Reader decodes a columnar trace from a byte slice it never copies or
// mutates — hand it an mmap'd file and only the touched pages fault in.
// Construction validates the magic and walks the run headers (skipping
// every column by its stored byte length) to index run offsets; columns
// decode lazily, on access.
type Reader struct {
	data []byte
	runs []int // byte offset of each run record
}

// NewReader indexes the runs of a columnar trace held in data.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, corruptf(0, "missing %q magic", magic)
	}
	r := &Reader{data: data}
	off := len(magic)
	for off < len(data) {
		r.runs = append(r.runs, off)
		end, err := skipRun(data, off)
		if err != nil {
			return nil, err
		}
		off = end
	}
	return r, nil
}

// ReadFile loads path into memory and indexes it.
func ReadFile(path string) (*Reader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return NewReader(data)
}

// NumRuns reports how many run records the trace holds.
func (r *Reader) NumRuns() int { return len(r.runs) }

// RunSize reports run i's encoded size in bytes without decoding it.
func (r *Reader) RunSize(i int) int {
	end := len(r.data)
	if i+1 < len(r.runs) {
		end = r.runs[i+1]
	}
	return end - r.runs[i]
}

// Run parses run i's series headers and returns a view of it. Columns
// stay encoded until Columns or DecodeInto asks for them.
func (r *Reader) Run(i int) (*Run, error) { return r.RunInto(i, nil) }

// RunInto parses run i into run, recycling its header scratch, and
// returns it; a nil run builds a fresh view (Run semantics). Campaign
// scans that walk many runs pass one Run value through every iteration —
// after the first run has sized the header slice, re-parsing is
// allocation-free.
func (r *Reader) RunInto(i int, run *Run) (*Run, error) {
	if run == nil {
		run = &Run{}
	}
	run.data = r.data
	run.series = run.series[:0]
	off := r.runs[i] + 1 // past the run marker, validated at index time
	nSeries, off, err := uvarintAt(r.data, off)
	if err != nil {
		return nil, err
	}
	for s := uint64(0); s < nSeries; s++ {
		var hdr seriesHdr
		hdr, off, err = parseSeriesHdr(r.data, off)
		if err != nil {
			return nil, err
		}
		run.series = append(run.series, hdr)
	}
	return run, nil
}

// seriesHdr locates one series' name and encoded columns inside the file.
type seriesHdr struct {
	nameOff, nameLen int
	n                int // samples
	tOff, tLen       int
	vOff, vLen       int
}

// Run is a parsed run record: named series headers over still-encoded
// columns.
type Run struct {
	data   []byte
	series []seriesHdr
}

// NumSeries reports the number of series in the run.
func (run *Run) NumSeries() int { return len(run.series) }

// Name returns series j's name.
func (run *Run) Name(j int) string { return string(run.NameBytes(j)) }

// NameBytes returns series j's name as a view into the trace bytes —
// no copy, valid for as long as the Reader's data. Decoders use it with
// Recorder.HandleBytes to resolve interned series without per-series
// string garbage.
func (run *Run) NameBytes(j int) []byte {
	h := run.series[j]
	return run.data[h.nameOff : h.nameOff+h.nameLen]
}

// Len reports series j's sample count without decoding it.
func (run *Run) Len(j int) int { return run.series[j].n }

// Columns decodes series j into ts and vs, reusing their capacity, and
// returns the filled slices.
func (run *Run) Columns(j int, ts, vs []float64) (t, v []float64, err error) {
	h := run.series[j]
	if ts, err = decodeTimeColumn(run.data, h.tOff, h.tLen, h.n, ts[:0]); err != nil {
		return nil, nil, err
	}
	if vs, err = decodeValueColumn(run.data, h.vOff, h.vLen, h.n, vs[:0]); err != nil {
		return nil, nil, err
	}
	return ts, vs, nil
}

// DecodeInto rebuilds the run in rec — same series, same samples, same
// registration order, so rec.WriteCSV reproduces the encoded recorder's
// CSV byte for byte. rec is reset first; its interned series buffers are
// recycled.
func (run *Run) DecodeInto(rec *trace.Recorder) error {
	rec.Reset()
	for j, h := range run.series {
		s := rec.HandleBytes(run.NameBytes(j))
		ts, err := decodeTimeColumn(run.data, h.tOff, h.tLen, h.n, s.T[:0])
		if err != nil {
			return err
		}
		vs, err := decodeValueColumn(run.data, h.vOff, h.vLen, h.n, s.V[:0])
		if err != nil {
			return err
		}
		if h.n > 0 {
			// Register through Add so the recorder's output order is the
			// stored series order, then splice the decoded columns in.
			s.Add(ts[0], vs[0])
			s.T = ts
			s.V = vs
		}
	}
	return nil
}

// skipRun walks one run record using only header fields and column byte
// lengths, returning the offset past it.
func skipRun(data []byte, off int) (int, error) {
	if data[off] != runMarker {
		return 0, corruptf(off, "bad run marker 0x%02x", data[off])
	}
	nSeries, off, err := uvarintAt(data, off+1)
	if err != nil {
		return 0, err
	}
	for s := uint64(0); s < nSeries; s++ {
		if _, off, err = parseSeriesHdr(data, off); err != nil {
			return 0, err
		}
	}
	return off, nil
}

// parseSeriesHdr reads one series header at off, returning the header and
// the offset past the series' columns.
func parseSeriesHdr(data []byte, off int) (seriesHdr, int, error) {
	var h seriesHdr
	nameLen, off, err := uvarintAt(data, off)
	if err != nil {
		return h, 0, err
	}
	if uint64(len(data)-off) < nameLen {
		return h, 0, corruptf(off, "series name of %d bytes overruns the trace", nameLen)
	}
	h.nameOff, h.nameLen = off, int(nameLen)
	off += int(nameLen)
	n, off, err := uvarintAt(data, off)
	if err != nil {
		return h, 0, err
	}
	h.n = int(n)
	if h.tOff, h.tLen, off, err = columnAt(data, off); err != nil {
		return h, 0, err
	}
	if h.vOff, h.vLen, off, err = columnAt(data, off); err != nil {
		return h, 0, err
	}
	return h, off, nil
}

// columnAt reads a length-prefixed column's bounds at off.
func columnAt(data []byte, off int) (colOff, colLen, end int, err error) {
	length, off, err := uvarintAt(data, off)
	if err != nil {
		return 0, 0, 0, err
	}
	if uint64(len(data)-off) < length {
		return 0, 0, 0, corruptf(off, "column of %d bytes overruns the trace", length)
	}
	return off, int(length), off + int(length), nil
}

// uvarintAt decodes one uvarint at off, returning it and the next offset.
func uvarintAt(data []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, 0, corruptf(off, "truncated or oversized varint")
	}
	return v, off + n, nil
}

// decodeTimeColumn inverts appendTimeColumn: n double-delta zigzag
// varints from data[off:off+length] into dst.
func decodeTimeColumn(data []byte, off, length, n int, dst []float64) ([]float64, error) {
	end := off + length
	var prev, prevDelta uint64
	for i := 0; i < n; i++ {
		if off >= end {
			return nil, corruptf(off, "timestamp column exhausted after %d of %d samples", i, n)
		}
		u, next, err := uvarintAt(data[:end], off)
		if err != nil {
			return nil, err
		}
		off = next
		prevDelta += uint64(unzigzag(u))
		prev += prevDelta
		dst = append(dst, math.Float64frombits(prev))
	}
	if off != end {
		return nil, corruptf(off, "%d trailing bytes after timestamp column", end-off)
	}
	return dst, nil
}

// decodeValueColumn inverts appendValueColumn: n XOR-chained varints from
// data[off:off+length] into dst.
func decodeValueColumn(data []byte, off, length, n int, dst []float64) ([]float64, error) {
	end := off + length
	var prev uint64
	for i := 0; i < n; i++ {
		if off >= end {
			return nil, corruptf(off, "value column exhausted after %d of %d samples", i, n)
		}
		u, next, err := uvarintAt(data[:end], off)
		if err != nil {
			return nil, err
		}
		off = next
		prev ^= u
		dst = append(dst, math.Float64frombits(prev))
	}
	if off != end {
		return nil, corruptf(off, "%d trailing bytes after value column", end-off)
	}
	return dst, nil
}
