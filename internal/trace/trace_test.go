package trace

import (
	"io"
	"strings"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	r.Add("u0", 0, 0.5)
	r.Add("u0", 1, 0.6)
	r.Add("u1", 0, 0.2)
	s := r.Series("u0")
	if s == nil || s.Len() != 2 || s.Last() != 0.6 {
		t.Fatalf("u0 series wrong: %+v", s)
	}
	if r.Series("missing") != nil {
		t.Error("missing series not nil")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "u0" || names[1] != "u1" {
		t.Errorf("Names = %v, want insertion order", names)
	}
}

func TestSeriesWindow(t *testing.T) {
	s := &Series{}
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i)*10)
	}
	w := s.Window(3, 6)
	if len(w) != 3 || w[0] != 30 || w[2] != 50 {
		t.Errorf("Window = %v", w)
	}
	if got := s.Window(100, 200); len(got) != 0 {
		t.Errorf("empty window = %v", got)
	}
}

func TestSeriesWindowBounds(t *testing.T) {
	s := &Series{}
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i)*10)
	}
	lo, hi := s.WindowBounds(3, 6)
	if lo != 3 || hi != 6 {
		t.Fatalf("WindowBounds(3, 6) = [%d, %d), want [3, 6)", lo, hi)
	}
	if lo, hi := s.WindowBounds(100, 200); lo != hi {
		t.Errorf("empty window bounds = [%d, %d), want empty", lo, hi)
	}
	if lo, hi := s.WindowBounds(-5, 0.5); lo != 0 || hi != 1 {
		t.Errorf("leading window bounds = [%d, %d), want [0, 1)", lo, hi)
	}
}

// TestWindowBoundsMatchesWindowProperty checks the contract that on
// time-sorted series — the only kind simulation runs produce — slicing by
// WindowBounds selects exactly the samples Window copies, including at
// duplicate timestamps and interval edges.
func TestWindowBoundsMatchesWindowProperty(t *testing.T) {
	s := &Series{}
	// Nondecreasing timestamps with duplicates.
	times := []float64{0, 0, 0.5, 1, 1, 1, 2.25, 3, 3, 4.5}
	for i, ts := range times {
		s.Add(ts, float64(i))
	}
	for _, iv := range [][2]float64{{0, 5}, {0, 0}, {1, 1}, {0.5, 3}, {1, 3}, {-1, 0.25}, {3, 10}, {4.5, 4.5}, {5, 9}} {
		want := s.Window(iv[0], iv[1])
		lo, hi := s.WindowBounds(iv[0], iv[1])
		got := s.V[lo:hi]
		if len(got) != len(want) {
			t.Fatalf("[%v, %v): bounds select %v, Window selects %v", iv[0], iv[1], got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("[%v, %v): bounds select %v, Window selects %v", iv[0], iv[1], got, want)
			}
		}
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.Add("a", 0, 1)
	r.Add("a", 1, 2)
	r.Add("b", 0, 3)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "series,t,value\na,0.000000,1\na,1.000000,2\nb,0.000000,3\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestWriteWideCSV(t *testing.T) {
	r := NewRecorder()
	r.Add("a", 0, 1)
	r.Add("a", 2, 2)
	r.Add("b", 0, 3)
	r.Add("b", 1, 4)
	var sb strings.Builder
	if err := r.WriteWideCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "t,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("rows = %d, want 4 (union of timestamps)", len(lines))
	}
	if !strings.HasPrefix(lines[2], "1.000000,,4") {
		t.Errorf("row at t=1 = %q, want empty cell for a", lines[2])
	}
}

func TestWriteWideCSVSubset(t *testing.T) {
	r := NewRecorder()
	r.Add("a", 0, 1)
	r.Add("b", 0, 2)
	var sb strings.Builder
	if err := r.WriteWideCSV(&sb, "b"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "t,b\n") {
		t.Errorf("subset header wrong: %q", sb.String())
	}
}

func TestSparkline(t *testing.T) {
	s := &Series{}
	for i := 0; i < 100; i++ {
		s.Add(float64(i), float64(i))
	}
	line := Sparkline(s, 10)
	if len([]rune(line)) != 10 {
		t.Errorf("width = %d, want 10", len([]rune(line)))
	}
	runes := []rune(line)
	// Bucket means of a ramp rise monotonically; the first bucket is the
	// lowest level and the last is above the middle.
	if runes[0] != '▁' || runes[9] <= runes[0] {
		t.Errorf("ramp = %q, want rising", line)
	}
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("ramp not monotone: %q", line)
		}
	}
	if Sparkline(nil, 10) != "" || Sparkline(&Series{}, 10) != "" {
		t.Error("empty sparkline should be empty string")
	}
}

func TestSparklineConstant(t *testing.T) {
	s := &Series{}
	s.Add(0, 5)
	s.Add(1, 5)
	if line := Sparkline(s, 4); line == "" {
		t.Error("constant series produced empty sparkline")
	}
}

func TestPlotASCII(t *testing.T) {
	s := &Series{}
	for i := 0; i < 50; i++ {
		s.Add(float64(i), float64(i%10))
	}
	plot := PlotASCII(s, 40, 8)
	if plot == "" {
		t.Fatal("empty plot")
	}
	lines := strings.Split(strings.TrimRight(plot, "\n"), "\n")
	if len(lines) != 8 {
		t.Errorf("height = %d, want 8", len(lines))
	}
	if !strings.Contains(plot, "*") {
		t.Error("plot has no marks")
	}
	if PlotASCII(nil, 10, 5) != "" {
		t.Error("nil plot should be empty")
	}
}

// failWriter errors after n successful writes.
type failWriter struct{ left int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, io.ErrClosedPipe
	}
	w.left--
	return len(p), nil
}

func TestWriteCSVPropagatesErrors(t *testing.T) {
	// Enough samples to overflow the encoder's flush buffer several times,
	// so a writer that fails after the first chunk still sees the error.
	r := NewRecorder()
	for i := 0; i < 5000; i++ {
		r.Add("a", float64(i), float64(2*i))
	}
	if err := r.WriteCSV(&failWriter{left: 0}); err == nil {
		t.Error("first-chunk write error not propagated")
	}
	if err := r.WriteCSV(&failWriter{left: 1}); err == nil {
		t.Error("later-chunk write error not propagated")
	}
	if err := r.WriteWideCSV(&failWriter{left: 0}); err == nil {
		t.Error("wide first-chunk write error not propagated")
	}
	if err := r.WriteWideCSV(&failWriter{left: 1}); err == nil {
		t.Error("wide later-chunk write error not propagated")
	}
}

func TestWriteWideCSVDuplicateTimestamps(t *testing.T) {
	r := NewRecorder()
	r.Add("a", 0, 1)
	r.Add("a", 0, 2) // same timestamp: the last value wins, none dangle
	r.Add("a", 1, 3)
	var sb strings.Builder
	if err := r.WriteWideCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("rows = %v", lines)
	}
	if lines[1] != "0.000000,2" {
		t.Errorf("row at t=0 = %q, want last duplicate (2)", lines[1])
	}
	if lines[2] != "1.000000,3" {
		t.Errorf("row at t=1 = %q, want 3 (not dropped)", lines[2])
	}
}

func TestRecorderResetBehavesLikeFresh(t *testing.T) {
	r := NewRecorder()
	h := r.Handle("b")
	r.Add("a", 0, 1)
	h.Add(0, 2)
	r.Reset()
	if n := r.Names(); len(n) != 0 {
		t.Fatalf("Names after Reset = %v, want empty", n)
	}
	if r.Series("a") != nil {
		t.Fatal("Series(a) non-nil after Reset")
	}
	// The pre-Reset handle stays valid and re-registers on first use; a
	// different registration order this cycle must be honored.
	h.Add(1, 3)
	r.Add("a", 1, 4)
	var fresh, reused strings.Builder
	if err := r.WriteCSV(&reused); err != nil {
		t.Fatal(err)
	}
	f := NewRecorder()
	f.Add("b", 1, 3)
	f.Add("a", 1, 4)
	if err := f.WriteCSV(&fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.String() != reused.String() {
		t.Fatalf("reset recorder CSV diverged:\nfresh:\n%s\nreused:\n%s", fresh.String(), reused.String())
	}
}

func TestPreInternedEmptySeriesInvisible(t *testing.T) {
	r := NewRecorder()
	r.Handle("never.sampled")
	r.Add("a", 0, 1)
	if got := r.Names(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Names = %v, want [a]", got)
	}
	if r.Series("never.sampled") != nil {
		t.Fatal("empty interned series visible through Series()")
	}
	var sb strings.Builder
	if err := r.WriteWideCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "never.sampled") {
		t.Fatalf("empty interned series leaked into wide CSV:\n%s", sb.String())
	}
}

// TestHandleAppendZeroAlloc is the memory-discipline gate for the
// handle-based recording path: once buffers have grown, appends through a
// handle must not allocate.
func TestHandleAppendZeroAlloc(t *testing.T) {
	r := NewRecorder()
	h := r.Handle("x")
	for i := 0; i < 4096; i++ {
		h.Add(float64(i), 1)
	}
	r.Reset()
	h = r.Handle("x")
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		h.Add(float64(i), 2)
		i++
	})
	if allocs != 0 {
		t.Errorf("handle append allocates %v allocs/op after warm-up", allocs)
	}
}

// TestCloneIntoRecyclesBuffers pins the pooled deep-copy path: CloneInto
// matches Clone byte for byte, recycles the destination's series buffers
// (zero allocs once warm), stays independent of the source, and clears
// stale series a previous occupant of the slot recorded.
func TestCloneIntoRecyclesBuffers(t *testing.T) {
	csv := func(r *Recorder) string {
		var sb strings.Builder
		if err := r.WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	src := NewRecorder()
	for i := 0; i < 64; i++ {
		src.Add("a", float64(i), float64(i)*0.5)
		src.Add("b", float64(i), -float64(i))
	}

	// A destination that previously held a different campaign's series.
	dst := NewRecorder()
	dst.Add("stale.series", 1, 2)

	if got, want := csv(src.CloneInto(dst)), csv(src.Clone()); got != want {
		t.Fatalf("CloneInto CSV diverged from Clone:\n%s\nvs\n%s", got, want)
	}
	if strings.Contains(csv(dst), "stale.series") {
		t.Fatal("stale series of the recycled destination leaked into the clone")
	}

	// Independence: mutating the source must not reach the clone.
	before := csv(dst)
	src.Add("a", 1000, 1000)
	if csv(dst) != before {
		t.Fatal("clone aliases the source recorder's buffers")
	}
	src.CloneInto(dst)

	// Warm steady state: same names, same sample counts — no allocations.
	allocs := testing.AllocsPerRun(10, func() {
		src.CloneInto(dst)
	})
	if allocs != 0 {
		t.Errorf("warm CloneInto allocates %v allocs/op, want 0", allocs)
	}
}
