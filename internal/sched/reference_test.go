package sched

import (
	"testing"
	"testing/quick"

	"github.com/autoe2e/autoe2e/internal/exectime"
	"github.com/autoe2e/autoe2e/internal/simtime"
	"github.com/autoe2e/autoe2e/internal/taskmodel"
	"github.com/autoe2e/autoe2e/internal/units"
)

// fuzzSystem builds a randomized 2-ECU, 3-task, 2-stage system from raw
// fuzz bytes, mirroring the accounting property test's construction.
func fuzzSystem(execsRaw, ratesRaw [3]uint8) *taskmodel.System {
	tasks := make([]*taskmodel.Task, 0, 3)
	for i := 0; i < 3; i++ {
		execMs := 1 + float64(execsRaw[i]%40)
		rate := units.Rate(5 + float64(ratesRaw[i]%45))
		tasks = append(tasks, &taskmodel.Task{
			Name: "t",
			Subtasks: []taskmodel.Subtask{
				{Name: "a", ECU: i % 2, NominalExec: simtime.FromMillis(execMs), MinRatio: 1, Weight: 1},
				{Name: "b", ECU: (i + 1) % 2, NominalExec: simtime.FromMillis(execMs / 2), MinRatio: 1, Weight: 1},
			},
			RateMin: rate, RateMax: rate,
		})
	}
	sys := &taskmodel.System{NumECUs: 2, UtilBound: []units.Util{1, 1}, Tasks: tasks}
	if err := sys.Validate(); err != nil {
		return nil
	}
	return sys
}

// runDriver drives one scheduler over the workload on its own engine,
// sampling utilizations every 200ms, and returns the observable trace:
// utilization samples and final counters (chain events are captured by the
// caller's OnChain).
func runDriver(d Driver, eng *simtime.Engine) (utils []units.Util, counters []TaskCounter) {
	eng.Every(200*simtime.Millisecond, func(simtime.Time) {
		utils = append(utils, d.SampleUtilizations()...)
	})
	d.Start()
	eng.Run(simtime.At(3))
	return utils, d.Counters()
}

// TestSchedulerMatchesReferenceFuzz is the scheduler-level golden gate:
// the pooled Scheduler and the retained naive Reference, run over
// identical randomized workloads (noisy execution times, link delays, both
// sync policies), must produce identical chain-event streams, utilization
// samples, and counters. Chains and jobs are recycled thousands of times
// per run, so any pooling defect — stale field, premature free, aliased
// event — diverges the traces.
func TestSchedulerMatchesReferenceFuzz(t *testing.T) {
	link := func(from, to int) simtime.Duration {
		if from != to {
			return 3 * simtime.Millisecond
		}
		return 0
	}
	if err := quick.Check(func(seed int64, execsRaw, ratesRaw [3]uint8, greedy, delay bool) bool {
		sys := fuzzSystem(execsRaw, ratesRaw)
		if sys == nil {
			return true // invalid draw; nothing to compare
		}
		cfg := Config{Exec: nil, Sync: SyncReleaseGuard}
		if greedy {
			cfg.Sync = SyncGreedy
		}
		if delay {
			cfg.LinkDelay = link
		}

		var pooledEvents, refEvents []ChainEvent
		pooledCfg := cfg
		pooledCfg.Exec = exectime.NewNoise(exectime.Nominal{}, 0.3, seed)
		pooledCfg.OnChain = func(ev ChainEvent) { pooledEvents = append(pooledEvents, ev) }
		refCfg := cfg
		refCfg.Exec = exectime.NewNoise(exectime.Nominal{}, 0.3, seed)
		refCfg.OnChain = func(ev ChainEvent) { refEvents = append(refEvents, ev) }

		pooledEng := simtime.NewEngine()
		refEng := simtime.NewEngine()
		pooledUtils, pooledCounters := runDriver(New(pooledEng, taskmodel.NewState(sys), pooledCfg), pooledEng)
		refUtils, refCounters := runDriver(NewReference(refEng, taskmodel.NewState(sys), refCfg), refEng)

		if len(pooledEvents) != len(refEvents) {
			t.Logf("seed %d: %d pooled events, %d reference events", seed, len(pooledEvents), len(refEvents))
			return false
		}
		for i := range pooledEvents {
			if pooledEvents[i] != refEvents[i] {
				t.Logf("seed %d: event %d diverged:\n  pooled    %+v\n  reference %+v", seed, i, pooledEvents[i], refEvents[i])
				return false
			}
		}
		if len(pooledUtils) != len(refUtils) {
			return false
		}
		for i := range pooledUtils {
			//lint:allow floateq identical call sequences must produce bit-identical samples
			if pooledUtils[i] != refUtils[i] {
				t.Logf("seed %d: utilization sample %d diverged: pooled %v, reference %v", seed, i, pooledUtils[i], refUtils[i])
				return false
			}
		}
		for i := range pooledCounters {
			if pooledCounters[i] != refCounters[i] {
				t.Logf("seed %d: task %d counters diverged: pooled %+v, reference %+v", seed, i, pooledCounters[i], refCounters[i])
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestReferenceBehaves sanity-checks the oracle itself on the trivially
// feasible workload: the Reference must not be a broken mirror that
// vacuously agrees with a broken Scheduler.
func TestReferenceBehaves(t *testing.T) {
	sys := singleTask(t, 10, 10)
	eng := simtime.NewEngine()
	s := NewReference(eng, taskmodel.NewState(sys), Config{Exec: exectime.Nominal{}})
	s.Start()
	eng.Run(simtime.At(1) - 1)
	c := s.Counter(0)
	if c.Released != 10 || c.Completed != 10 || c.Missed != 0 {
		t.Fatalf("reference counters = %+v, want 10/10/0", c)
	}
}

// TestSchedulerSteadyStateZeroAlloc is the pooling gate for the whole
// substrate: a warmed-up multi-ECU simulation — chained tasks crossing
// link delays, release guards engaged, plus an overloaded task whose every
// instance is aborted at its deadline — must run arbitrarily long without
// a single heap allocation. Every chain, job, and event slot is recycled.
func TestSchedulerSteadyStateZeroAlloc(t *testing.T) {
	sys := mustSystem(t, &taskmodel.System{
		NumECUs:   2,
		UtilBound: []units.Util{1, 1},
		Tasks: []*taskmodel.Task{
			{
				Name: "chain",
				Subtasks: []taskmodel.Subtask{
					{Name: "a", ECU: 0, NominalExec: simtime.FromMillis(5), MinRatio: 1, Weight: 1},
					{Name: "b", ECU: 1, NominalExec: simtime.FromMillis(4), MinRatio: 1, Weight: 1},
				},
				RateMin: 20, RateMax: 20,
			},
			{
				// 30ms of demand every 20ms: every instance aborts at its
				// deadline, exercising the chainDeadline free path.
				Name:     "overload",
				Subtasks: []taskmodel.Subtask{{Name: "o", ECU: 1, NominalExec: simtime.FromMillis(30), MinRatio: 1, Weight: 1}},
				RateMin:  50, RateMax: 50,
			},
		},
	})
	eng := simtime.NewEngine()
	s := New(eng, taskmodel.NewState(sys), Config{
		Exec: exectime.Nominal{},
		LinkDelay: func(from, to int) simtime.Duration {
			if from != to {
				return 2 * simtime.Millisecond
			}
			return 0
		},
	})
	s.Start()
	eng.Run(simtime.At(2)) // warm pools, arena, and ready heaps
	utilsBuf := make([]units.Util, 0, sys.NumECUs)
	countersBuf := make([]TaskCounter, 0, len(sys.Tasks))
	allocs := testing.AllocsPerRun(100, func() {
		eng.Run(eng.Now().Add(100 * simtime.Millisecond))
		utilsBuf = s.SampleUtilizationsInto(utilsBuf)
		countersBuf = s.CountersInto(countersBuf)
	})
	if allocs != 0 {
		t.Fatalf("steady-state scheduler window allocates %v times, want 0", allocs)
	}
	c := s.Counter(1)
	if c.Missed == 0 {
		t.Fatal("overloaded task never missed: the abort path was not exercised")
	}
}
