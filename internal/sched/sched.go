// Package sched simulates the distributed real-time execution substrate of
// the paper: per-ECU preemptive fixed-priority scheduling (RMS /
// deadline-monotonic on the evenly-split subdeadlines of Section V.A.3),
// end-to-end task chains synchronized by the release-guard protocol, job
// abortion at the end-to-end deadline ("the computation result becomes
// obsolete and has to be discarded", Section III), windowed CPU-utilization
// monitoring, and per-task deadline-miss accounting.
//
// The simulation is event-driven on a simtime.Engine: events are job
// releases, job completions, chain deadlines, and periodic first-subtask
// releases. Identical seeds produce identical traces.
package sched

import (
	"fmt"

	"github.com/autoe2e/autoe2e/internal/exectime"
	"github.com/autoe2e/autoe2e/internal/simtime"
	"github.com/autoe2e/autoe2e/internal/taskmodel"
	"github.com/autoe2e/autoe2e/internal/units"
)

// ChainEvent describes the fate of one end-to-end task instance. It is
// delivered to the OnChain callback when the instance either completes all
// subtasks or is aborted at its end-to-end deadline.
type ChainEvent struct {
	Task     taskmodel.TaskID
	Instance uint64
	// Release is when the first subtask was released.
	Release simtime.Time
	// Deadline is the absolute end-to-end deadline: Release plus one
	// period per subtask (the deadline d_i is evenly divided into
	// subdeadlines p = d_i/n_i, and the task releases every p —
	// Section V.A.3).
	Deadline simtime.Time
	// Completed is when the last subtask finished; meaningful only when
	// Missed is false.
	Completed simtime.Time
	// Missed reports that the instance was aborted at its deadline.
	Missed bool
}

// SyncPolicy selects how successive subtasks of a chain are released.
type SyncPolicy int

const (
	// SyncReleaseGuard is the paper's non-greedy protocol [26]: a
	// subtask's release is separated from its previous release by at
	// least the task period, smoothing bursts at the cost of added
	// latency. The default.
	SyncReleaseGuard SyncPolicy = iota
	// SyncGreedy releases a successor the instant its predecessor
	// completes. Provided for the release-guard ablation: greedy
	// synchronization admits bursts that inflate interference on shared
	// ECUs.
	SyncGreedy
)

// Config carries the pluggable pieces of the scheduler.
type Config struct {
	// Exec produces actual job demands. Required.
	Exec exectime.Model
	// Sync selects the chain synchronization protocol. Default
	// SyncReleaseGuard.
	Sync SyncPolicy
	// LinkDelay, if non-nil, returns the communication delay inserted
	// between the completion of a subtask on fromECU and the
	// release-guard release of its successor on toECU (Section IV.E.1).
	LinkDelay func(fromECU, toECU int) simtime.Duration
	// OnChain, if non-nil, is invoked for every completed or missed task
	// instance. Used by the vehicle co-simulation to apply (or hold)
	// actuation commands.
	OnChain func(ev ChainEvent)
}

// TaskCounter is the cumulative accounting for one task.
type TaskCounter struct {
	// Released counts chain instances whose first subtask was released.
	Released uint64
	// Completed counts instances that finished before their deadline.
	Completed uint64
	// Missed counts instances aborted at their end-to-end deadline.
	Missed uint64
}

// MissRatio returns Missed / (Completed + Missed), or 0 when no instance
// has resolved yet.
func (c TaskCounter) MissRatio() float64 {
	resolved := c.Completed + c.Missed
	if resolved == 0 {
		return 0
	}
	return float64(c.Missed) / float64(resolved)
}

// Sub returns the counter delta c − earlier, for windowed statistics.
func (c TaskCounter) Sub(earlier TaskCounter) TaskCounter {
	return TaskCounter{
		Released:  c.Released - earlier.Released,
		Completed: c.Completed - earlier.Completed,
		Missed:    c.Missed - earlier.Missed,
	}
}

// Scheduler drives the distributed task set on a simulation engine.
type Scheduler struct {
	eng   *simtime.Engine
	sys   *taskmodel.System
	state *taskmodel.State
	cfg   Config

	ecus     []*ecuRunner
	lastRel  map[taskmodel.SubtaskRef]simtime.Time
	counters []TaskCounter
	nextSeq  uint64
	started  bool
}

// New assembles a scheduler for the validated system at the given operating
// point. Call Start to schedule the initial releases.
func New(eng *simtime.Engine, state *taskmodel.State, cfg Config) *Scheduler {
	if cfg.Exec == nil {
		panic("sched: Config.Exec is required")
	}
	sys := state.System()
	s := &Scheduler{
		eng:      eng,
		sys:      sys,
		state:    state,
		cfg:      cfg,
		lastRel:  make(map[taskmodel.SubtaskRef]simtime.Time),
		counters: make([]TaskCounter, len(sys.Tasks)),
	}
	s.ecus = make([]*ecuRunner, sys.NumECUs)
	for j := range s.ecus {
		s.ecus[j] = &ecuRunner{sched: s, id: j, lastSample: eng.Now()}
	}
	return s
}

// State returns the operating point the scheduler reads rates and ratios
// from. Controllers mutate it between control periods.
func (s *Scheduler) State() *taskmodel.State { return s.state }

// Start schedules the first release of every task at the current instant.
// It must be called exactly once.
func (s *Scheduler) Start() {
	if s.started {
		panic("sched: Start called twice")
	}
	s.started = true
	for ti := range s.sys.Tasks {
		ti := taskmodel.TaskID(ti)
		s.eng.Schedule(s.eng.Now(), func(now simtime.Time) { s.releaseFirst(ti, now) })
	}
}

// Counters returns a snapshot of the cumulative per-task accounting.
func (s *Scheduler) Counters() []TaskCounter {
	out := make([]TaskCounter, len(s.counters))
	copy(out, s.counters)
	return out
}

// Counter returns the cumulative accounting for one task.
func (s *Scheduler) Counter(i taskmodel.TaskID) TaskCounter { return s.counters[i] }

// SampleUtilizations returns each ECU's busy-time fraction since the
// previous call (the paper's utilization monitor) and starts a new window.
// Windows with zero width return 0.
func (s *Scheduler) SampleUtilizations() []units.Util {
	now := s.eng.Now()
	out := make([]units.Util, len(s.ecus))
	for j, e := range s.ecus {
		out[j] = e.sampleWindow(now)
	}
	return out
}

// releaseFirst releases a new instance of task ti and schedules the next
// periodic release. The period is read from the current rate, so rate
// changes by the inner controller take effect at the next release.
func (s *Scheduler) releaseFirst(ti taskmodel.TaskID, now simtime.Time) {
	period := s.state.Period(ti)
	n := len(s.sys.Tasks[ti].Subtasks)
	c := &chain{
		task:     ti,
		instance: s.counters[ti].Released,
		release:  now,
		deadline: now.Add(period * simtime.Duration(n)),
		period:   period,
	}
	s.counters[ti].Released++
	// The deadline event aborts the chain if it has not completed. It is
	// scheduled before the next release so that, at equal timestamps, the
	// previous instance resolves before a new one starts.
	s.eng.Schedule(c.deadline, func(simtime.Time) { s.chainDeadline(c) })
	s.eng.Schedule(now.Add(period), func(next simtime.Time) { s.releaseFirst(ti, next) })
	s.releaseStage(c, 0, now)
}

// releaseStage releases subtask `stage` of chain c, honouring the release
// guard: consecutive releases of the same subtask are separated by at least
// the chain period (unless greedy synchronization was configured).
func (s *Scheduler) releaseStage(c *chain, stage int, now simtime.Time) {
	ref := taskmodel.SubtaskRef{Task: c.task, Index: stage}
	at := now
	// Greedy synchronization only affects successor stages; the first
	// stage's periodic separation is always guarded so a rate decrease
	// between releases cannot produce a short gap.
	if s.cfg.Sync == SyncReleaseGuard || stage == 0 {
		if last, ok := s.lastRel[ref]; ok {
			if guard := last.Add(c.period); guard > at {
				at = guard
			}
		}
	}
	if at > now {
		s.eng.Schedule(at, func(t simtime.Time) { s.admitJob(c, stage, t) })
		return
	}
	s.admitJob(c, stage, now)
}

// admitJob creates the job for subtask `stage` of chain c and enqueues it on
// its ECU.
func (s *Scheduler) admitJob(c *chain, stage int, now simtime.Time) {
	if c.dead {
		return // chain was aborted while the release was pending
	}
	ref := taskmodel.SubtaskRef{Task: c.task, Index: stage}
	s.lastRel[ref] = now
	sub := s.sys.Subtask(ref)
	demand := s.cfg.Exec.Demand(s.sys, ref, now, s.state.Ratio(ref))
	s.nextSeq++
	j := &job{
		chain:     c,
		ref:       ref,
		release:   now,
		remaining: demand,
		// Rate-monotonic priority on the subtask period d_i/n_i (every
		// stage of a chain runs at the task rate and owns one period as
		// its subdeadline); smaller is more urgent.
		priority: float64(c.period),
		seq:      s.nextSeq,
		index:    -1,
	}
	c.stage = stage
	c.job = j
	s.ecus[sub.ECU].enqueue(j, now)
}

// jobFinished is called by an ECU runner when a job runs to completion.
func (s *Scheduler) jobFinished(j *job, now simtime.Time) {
	c := j.chain
	if c.dead {
		return
	}
	c.job = nil
	next := c.stage + 1
	if next < len(s.sys.Tasks[c.task].Subtasks) {
		from := s.sys.Subtask(j.ref).ECU
		to := s.sys.Tasks[c.task].Subtasks[next].ECU
		var delay simtime.Duration
		if s.cfg.LinkDelay != nil {
			delay = s.cfg.LinkDelay(from, to)
		}
		if delay > 0 {
			s.eng.Schedule(now.Add(delay), func(t simtime.Time) {
				if !c.dead {
					s.releaseStage(c, next, t)
				}
			})
		} else {
			s.releaseStage(c, next, now)
		}
		return
	}
	// Last subtask done: the instance met its end-to-end deadline (the
	// deadline event would have aborted it otherwise).
	c.dead = true
	s.counters[c.task].Completed++
	if s.cfg.OnChain != nil {
		s.cfg.OnChain(ChainEvent{
			Task: c.task, Instance: c.instance,
			Release: c.release, Deadline: c.deadline,
			Completed: now, Missed: false,
		})
	}
}

// chainDeadline fires at a chain's absolute end-to-end deadline and aborts
// it if it has not completed: the stale result is discarded and the
// actuator keeps its previous command, exactly the failure mode of
// Figure 3.
func (s *Scheduler) chainDeadline(c *chain) {
	if c.dead {
		return
	}
	c.dead = true
	if j := c.job; j != nil {
		s.ecus[s.sys.Subtask(j.ref).ECU].abort(j, s.eng.Now())
		c.job = nil
	}
	s.counters[c.task].Missed++
	if s.cfg.OnChain != nil {
		s.cfg.OnChain(ChainEvent{
			Task: c.task, Instance: c.instance,
			Release: c.release, Deadline: c.deadline,
			Missed: true,
		})
	}
}

// chain is one live instance of an end-to-end task.
type chain struct {
	task     taskmodel.TaskID
	instance uint64
	release  simtime.Time
	deadline simtime.Time
	period   simtime.Duration
	stage    int
	job      *job
	dead     bool
}

// job is one released subtask instance awaiting or receiving CPU time.
type job struct {
	chain     *chain
	ref       taskmodel.SubtaskRef
	release   simtime.Time
	remaining simtime.Duration
	priority  float64 // smaller = higher priority
	seq       uint64  // FIFO tie-break
	index     int     // position in the ready heap; -1 when not queued
}

func (j *job) String() string {
	return fmt.Sprintf("%v@%v", j.ref, j.release)
}
