// Package sched simulates the distributed real-time execution substrate of
// the paper: per-ECU preemptive fixed-priority scheduling (RMS /
// deadline-monotonic on the evenly-split subdeadlines of Section V.A.3),
// end-to-end task chains synchronized by the release-guard protocol, job
// abortion at the end-to-end deadline ("the computation result becomes
// obsolete and has to be discarded", Section III), windowed CPU-utilization
// monitoring, and per-task deadline-miss accounting.
//
// The simulation is event-driven on a simtime.Engine: events are job
// releases, job completions, chain deadlines, and periodic first-subtask
// releases. Identical seeds produce identical traces.
//
// Scheduler is the production implementation: chains and jobs are recycled
// through intrusive free lists owned by the Scheduler, release-guard state
// lives in a dense per-subtask slice, and every event is scheduled through
// the engine's closure-free ScheduleCall path, so a steady-state simulation
// performs zero heap allocations per release→admit→finish→deadline cycle.
// Reference retains the naive allocating implementation; the equivalence
// tests require byte-identical traces between the two.
package sched

import (
	"fmt"

	"github.com/autoe2e/autoe2e/internal/exectime"
	"github.com/autoe2e/autoe2e/internal/simtime"
	"github.com/autoe2e/autoe2e/internal/taskmodel"
	"github.com/autoe2e/autoe2e/internal/units"
)

// ChainEvent describes the fate of one end-to-end task instance. It is
// delivered to the OnChain callback when the instance either completes all
// subtasks or is aborted at its end-to-end deadline.
type ChainEvent struct {
	Task     taskmodel.TaskID
	Instance uint64
	// Release is when the first subtask was released.
	Release simtime.Time
	// Deadline is the absolute end-to-end deadline: Release plus one
	// period per subtask (the deadline d_i is evenly divided into
	// subdeadlines p = d_i/n_i, and the task releases every p —
	// Section V.A.3).
	Deadline simtime.Time
	// Completed is when the last subtask finished; meaningful only when
	// Missed is false.
	Completed simtime.Time
	// Missed reports that the instance was aborted at its deadline.
	Missed bool
}

// SyncPolicy selects how successive subtasks of a chain are released.
type SyncPolicy int

const (
	// SyncReleaseGuard is the paper's non-greedy protocol [26]: a
	// subtask's release is separated from its previous release by at
	// least the task period, smoothing bursts at the cost of added
	// latency. The default.
	SyncReleaseGuard SyncPolicy = iota
	// SyncGreedy releases a successor the instant its predecessor
	// completes. Provided for the release-guard ablation: greedy
	// synchronization admits bursts that inflate interference on shared
	// ECUs.
	SyncGreedy
)

// Config carries the pluggable pieces of the scheduler.
type Config struct {
	// Exec produces actual job demands. Required.
	Exec exectime.Model
	// Sync selects the chain synchronization protocol. Default
	// SyncReleaseGuard.
	Sync SyncPolicy
	// LinkDelay, if non-nil, returns the communication delay inserted
	// between the completion of a subtask on fromECU and the
	// release-guard release of its successor on toECU (Section IV.E.1).
	LinkDelay func(fromECU, toECU int) simtime.Duration
	// OnChain, if non-nil, is invoked for every completed or missed task
	// instance. Used by the vehicle co-simulation to apply (or hold)
	// actuation commands.
	OnChain func(ev ChainEvent)
}

// TaskCounter is the cumulative accounting for one task.
type TaskCounter struct {
	// Released counts chain instances whose first subtask was released.
	Released uint64
	// Completed counts instances that finished before their deadline.
	Completed uint64
	// Missed counts instances aborted at their end-to-end deadline.
	Missed uint64
}

// MissRatio returns Missed / (Completed + Missed), or 0 when no instance
// has resolved yet.
func (c TaskCounter) MissRatio() float64 {
	resolved := c.Completed + c.Missed
	if resolved == 0 {
		return 0
	}
	return float64(c.Missed) / float64(resolved)
}

// Sub returns the counter delta c − earlier, for windowed statistics.
func (c TaskCounter) Sub(earlier TaskCounter) TaskCounter {
	return TaskCounter{
		Released:  c.Released - earlier.Released,
		Completed: c.Completed - earlier.Completed,
		Missed:    c.Missed - earlier.Missed,
	}
}

// Driver is the contract the middleware and the experiment runner need from
// a chain scheduler. Scheduler (pooled, production) and Reference (naive,
// golden oracle) both satisfy it, which is how the equivalence tests run
// the full closed loops on either substrate.
type Driver interface {
	// State returns the operating point the scheduler reads rates and
	// ratios from.
	State() *taskmodel.State
	// Start schedules the first release of every task. Call exactly once.
	Start()
	// Counter returns the cumulative accounting for one task.
	Counter(i taskmodel.TaskID) TaskCounter
	// Counters returns a fresh snapshot of the per-task accounting.
	Counters() []TaskCounter
	// CountersInto writes the per-task accounting into dst (grown if
	// needed) and returns it; the allocation-free variant for control
	// ticks.
	CountersInto(dst []TaskCounter) []TaskCounter
	// SampleUtilizations returns each ECU's busy fraction since the
	// previous sample and starts a new window.
	SampleUtilizations() []units.Util
	// SampleUtilizationsInto is SampleUtilizations writing into dst
	// (grown if needed); the allocation-free variant for control ticks.
	SampleUtilizationsInto(dst []units.Util) []units.Util
}

// Scheduler drives the distributed task set on a simulation engine. It
// owns two intrusive object pools (chains and jobs, recycled through
// nextFree links) and never schedules a closure: all event callbacks are
// package-level functions bound to pre-allocated arguments.
type Scheduler struct {
	eng   *simtime.Engine
	sys   *taskmodel.System
	state *taskmodel.State
	cfg   Config

	ecus []*ecuRunner
	// stageBase flattens SubtaskRef into an index for lastRel:
	// stageBase[task] + stage.
	stageBase []int
	// lastRel is the release-guard state: the previous release instant of
	// each subtask, or -1 before its first release. Dense replacement for
	// the map the Reference keeps.
	lastRel  []simtime.Time
	counters []TaskCounter
	// taskArgs pre-binds the periodic first-release callback argument for
	// each task, so releases schedule no closures.
	//lint:sticky pre-bound (s, ti) callback arguments, constant after New; only their addresses are taken
	taskArgs  []taskArg
	freeChain *chain
	freeJob   *job
	// allChains/allJobs register every pooled object ever allocated, so
	// Reset can rebuild the free lists even when a mid-run engine stop
	// left objects live outside them. Appended only when a pool grows.
	allChains []*chain
	allJobs   []*job
	nextSeq   uint64
	started   bool
}

// taskArg is the pre-bound argument of a task's periodic release events.
type taskArg struct {
	s  *Scheduler
	ti taskmodel.TaskID
}

// New assembles a scheduler for the validated system at the given operating
// point. Call Start to schedule the initial releases.
func New(eng *simtime.Engine, state *taskmodel.State, cfg Config) *Scheduler {
	if cfg.Exec == nil {
		panic("sched: Config.Exec is required")
	}
	sys := state.System()
	s := &Scheduler{
		eng:      eng,
		sys:      sys,
		state:    state,
		cfg:      cfg,
		counters: make([]TaskCounter, len(sys.Tasks)),
	}
	s.stageBase = make([]int, len(sys.Tasks))
	total := 0
	for ti, task := range sys.Tasks {
		s.stageBase[ti] = total
		total += len(task.Subtasks)
	}
	s.lastRel = make([]simtime.Time, total)
	for i := range s.lastRel {
		s.lastRel[i] = -1
	}
	s.taskArgs = make([]taskArg, len(sys.Tasks))
	for ti := range s.taskArgs {
		s.taskArgs[ti] = taskArg{s: s, ti: taskmodel.TaskID(ti)}
	}
	s.ecus = make([]*ecuRunner, sys.NumECUs)
	for j := range s.ecus {
		s.ecus[j] = &ecuRunner{sched: s, id: j, lastSample: eng.Now()}
	}
	return s
}

// State returns the operating point the scheduler reads rates and ratios
// from. Controllers mutate it between control periods.
func (s *Scheduler) State() *taskmodel.State { return s.state }

// Start schedules the first release of every task at the current instant.
// It must be called exactly once.
//
//lint:certify noalloc,nopanic,deterministic initial releases: one pooled ScheduleCall per task
func (s *Scheduler) Start() {
	if s.started {
		panic("sched: Start called twice") //lint:allow panicguard double Start would double every release train; failing loudly is the contract
	}
	s.started = true
	for ti := range s.sys.Tasks {
		s.eng.ScheduleCall(s.eng.Now(), firstReleaseEvent, &s.taskArgs[ti])
	}
}

// Reset returns the scheduler to its freshly-constructed state for a new
// run under the given configuration, reusing every pooled chain and job —
// including objects left live by a mid-run engine stop, which the
// registries recover. The engine must already be reset (its pending
// events, including this scheduler's, are gone and Now is back to zero).
// A reset scheduler replays a workload exactly as a fresh one: counters
// zero, release guards clear, sequence numbers restart.
func (s *Scheduler) Reset(cfg Config) {
	if cfg.Exec == nil {
		panic("sched: Config.Exec is required") //lint:allow panicguard a nil execution model is a caller bug caught before any event fires
	}
	s.cfg = cfg
	for i := range s.counters {
		s.counters[i] = TaskCounter{}
	}
	for i := range s.lastRel {
		s.lastRel[i] = -1
	}
	s.freeChain = nil
	for _, c := range s.allChains {
		c.job = nil
		c.dead = false
		c.deadlineEv = 0
		c.pendingEv = 0
		c.pendingStage = 0
		c.nextFree = s.freeChain
		s.freeChain = c
	}
	s.freeJob = nil
	for _, j := range s.allJobs {
		j.chain = nil
		j.index = -1
		j.nextFree = s.freeJob
		s.freeJob = j
	}
	now := s.eng.Now()
	for _, e := range s.ecus {
		e.reset(now)
	}
	s.nextSeq = 0
	s.started = false
}

// Counters returns a snapshot of the cumulative per-task accounting.
func (s *Scheduler) Counters() []TaskCounter { return s.CountersInto(nil) }

// CountersInto writes the cumulative per-task accounting into dst, growing
// it if needed, and returns it. The control tick calls this with a reused
// buffer so sampling allocates nothing.
//
//lint:certify noalloc,nopanic,deterministic control-tick counter snapshot; first-call sizing is the one audited allocation
func (s *Scheduler) CountersInto(dst []TaskCounter) []TaskCounter {
	if cap(dst) < len(s.counters) {
		dst = make([]TaskCounter, len(s.counters)) //lint:allow hotpathalloc first-call sizing; steady state reuses dst
	}
	dst = dst[:len(s.counters)]
	copy(dst, s.counters)
	return dst
}

// Counter returns the cumulative accounting for one task.
func (s *Scheduler) Counter(i taskmodel.TaskID) TaskCounter { return s.counters[i] }

// SampleUtilizations returns each ECU's busy-time fraction since the
// previous call (the paper's utilization monitor) and starts a new window.
// Windows with zero width return 0.
func (s *Scheduler) SampleUtilizations() []units.Util { return s.SampleUtilizationsInto(nil) }

// SampleUtilizationsInto is SampleUtilizations writing into dst, growing it
// if needed. The control tick calls this with a reused buffer so sampling
// allocates nothing.
//
//lint:certify noalloc,nopanic,deterministic control-tick utilization sampling; first-call sizing is the one audited allocation
func (s *Scheduler) SampleUtilizationsInto(dst []units.Util) []units.Util {
	now := s.eng.Now()
	if cap(dst) < len(s.ecus) {
		dst = make([]units.Util, len(s.ecus)) //lint:allow hotpathalloc first-call sizing; steady state reuses dst
	}
	dst = dst[:len(s.ecus)]
	for j, e := range s.ecus {
		dst[j] = e.sampleWindow(now)
	}
	return dst
}

// --- pooled event callbacks ---
//
// All four are package-level functions: the engine stores the function
// value and the argument pointer in a recycled event slot, so scheduling
// them never allocates. The argument is the pre-bound per-task taskArg for
// periodic releases and the *chain itself for chain-lifecycle events.

// firstReleaseEvent fires a task's periodic release.
//
//lint:certify noalloc,nopanic,deterministic periodic release trampoline: the full release→admit→dispatch cycle recycles pooled objects
func firstReleaseEvent(now simtime.Time, arg any) {
	ta := arg.(*taskArg)
	ta.s.releaseFirst(ta.ti, now)
}

// chainDeadlineEvent fires at a chain's absolute end-to-end deadline.
//
//lint:certify noalloc,nopanic,deterministic deadline-abort trampoline: cancellation and pool recycling only
func chainDeadlineEvent(_ simtime.Time, arg any) {
	c := arg.(*chain)
	c.s.chainDeadline(c)
}

// guardReleaseEvent fires a release-guard-delayed subtask admission
// (c.pendingStage holds which stage was held back).
//
//lint:certify noalloc,nopanic,deterministic release-guard trampoline: delayed admission of a held-back stage
func guardReleaseEvent(now simtime.Time, arg any) {
	c := arg.(*chain)
	c.pendingEv = 0
	c.s.admitJob(c, c.pendingStage, now)
}

// linkReleaseEvent fires a successor release after a communication delay.
//
//lint:certify noalloc,nopanic,deterministic link-delay trampoline: successor release after communication latency
func linkReleaseEvent(now simtime.Time, arg any) {
	c := arg.(*chain)
	c.pendingEv = 0
	if !c.dead {
		c.s.releaseStage(c, c.pendingStage, now)
	}
}

// --- chain/job pools ---

// getChain takes a chain from the intrusive free list (or allocates the
// pool's next object). The caller initializes every field.
func (s *Scheduler) getChain() *chain {
	c := s.freeChain
	if c == nil {
		c = &chain{s: s, poolIdx: int32(len(s.allChains))} //lint:allow hotpathalloc pool refill when empty; steady state recycles via putChain
		s.allChains = append(s.allChains, c)
		return c
	}
	s.freeChain = c.nextFree
	c.nextFree = nil
	return c
}

// putChain recycles a resolved chain. The chain must have no outstanding
// engine events or live job: completion cancels the deadline event, and
// the deadline path cancels any pending delayed release, before freeing.
func (s *Scheduler) putChain(c *chain) {
	c.job = nil
	c.nextFree = s.freeChain
	s.freeChain = c
}

// getJob takes a job from the intrusive free list. The caller initializes
// every field.
func (s *Scheduler) getJob() *job {
	j := s.freeJob
	if j == nil {
		j = &job{poolIdx: int32(len(s.allJobs))} //lint:allow hotpathalloc pool refill when empty; steady state recycles via putJob
		s.allJobs = append(s.allJobs, j)
		return j
	}
	s.freeJob = j.nextFree
	j.nextFree = nil
	return j
}

// putJob recycles a job that is neither running nor queued on any ECU.
func (s *Scheduler) putJob(j *job) {
	j.chain = nil
	j.nextFree = s.freeJob
	s.freeJob = j
}

// releaseFirst releases a new instance of task ti and schedules the next
// periodic release. The period is read from the current rate, so rate
// changes by the inner controller take effect at the next release.
func (s *Scheduler) releaseFirst(ti taskmodel.TaskID, now simtime.Time) {
	period := s.state.Period(ti)
	n := len(s.sys.Tasks[ti].Subtasks)
	c := s.getChain() //lint:allow hotpathalloc pool refill when empty; steady state recycles via putChain
	c.task = ti
	c.instance = s.counters[ti].Released
	c.release = now
	c.deadline = now.Add(period * simtime.Duration(n))
	c.period = period
	c.stage = 0
	c.job = nil
	c.dead = false
	c.pendingEv = 0
	c.pendingStage = 0
	s.counters[ti].Released++
	// The deadline event aborts the chain if it has not completed. It is
	// scheduled before the next release so that, at equal timestamps, the
	// previous instance resolves before a new one starts.
	c.deadlineEv = s.eng.ScheduleCall(c.deadline, chainDeadlineEvent, c)
	s.eng.ScheduleCall(now.Add(period), firstReleaseEvent, &s.taskArgs[ti])
	s.releaseStage(c, 0, now)
}

// releaseStage releases subtask `stage` of chain c, honouring the release
// guard: consecutive releases of the same subtask are separated by at least
// the chain period (unless greedy synchronization was configured).
func (s *Scheduler) releaseStage(c *chain, stage int, now simtime.Time) {
	at := now
	// Greedy synchronization only affects successor stages; the first
	// stage's periodic separation is always guarded so a rate decrease
	// between releases cannot produce a short gap.
	if s.cfg.Sync == SyncReleaseGuard || stage == 0 {
		if last := s.lastRel[s.stageBase[c.task]+stage]; last >= 0 {
			if guard := last.Add(c.period); guard > at {
				at = guard
			}
		}
	}
	if at > now {
		c.pendingStage = stage
		c.pendingEv = s.eng.ScheduleCall(at, guardReleaseEvent, c)
		return
	}
	s.admitJob(c, stage, now)
}

// admitJob creates the job for subtask `stage` of chain c and enqueues it on
// its ECU.
func (s *Scheduler) admitJob(c *chain, stage int, now simtime.Time) {
	if c.dead {
		return // chain was aborted while the release was pending
	}
	ref := taskmodel.SubtaskRef{Task: c.task, Index: stage}
	s.lastRel[s.stageBase[c.task]+stage] = now
	sub := s.sys.Subtask(ref)
	demand := s.cfg.Exec.Demand(s.sys, ref, now, s.state.Ratio(ref))
	s.nextSeq++
	j := s.getJob() //lint:allow hotpathalloc pool refill when empty; steady state recycles via putJob
	j.chain = c
	j.ref = ref
	j.release = now
	j.remaining = demand
	// Rate-monotonic priority on the subtask period d_i/n_i (every
	// stage of a chain runs at the task rate and owns one period as
	// its subdeadline); smaller is more urgent.
	j.priority = float64(c.period)
	j.seq = s.nextSeq
	j.index = -1
	c.stage = stage
	c.job = j
	s.ecus[sub.ECU].enqueue(j, now)
}

// jobFinished is called by an ECU runner when a job runs to completion.
func (s *Scheduler) jobFinished(j *job, now simtime.Time) {
	c := j.chain
	if c.dead {
		return
	}
	c.job = nil
	ref := j.ref
	s.putJob(j)
	next := c.stage + 1
	if next < len(s.sys.Tasks[c.task].Subtasks) {
		from := s.sys.Subtask(ref).ECU
		to := s.sys.Tasks[c.task].Subtasks[next].ECU
		var delay simtime.Duration
		if s.cfg.LinkDelay != nil {
			delay = s.cfg.LinkDelay(from, to) //lint:hookpoint link-delay models are pure seeded delay tables; the bus package pins that contract
		}
		if delay > 0 {
			c.pendingStage = next
			c.pendingEv = s.eng.ScheduleCall(now.Add(delay), linkReleaseEvent, c)
		} else {
			s.releaseStage(c, next, now)
		}
		return
	}
	// Last subtask done: the instance met its end-to-end deadline. Cancel
	// the pending deadline event — its argument is this chain, which is
	// about to be recycled, and the generation-checked cancel guarantees
	// the slot's next occupant is unaffected.
	c.dead = true
	s.eng.Cancel(c.deadlineEv)
	s.counters[c.task].Completed++
	if s.cfg.OnChain != nil {
		//lint:hookpoint chain observers are application callbacks (actuation, logging) outside the certified substrate
		s.cfg.OnChain(ChainEvent{
			Task: c.task, Instance: c.instance,
			Release: c.release, Deadline: c.deadline,
			Completed: now, Missed: false,
		})
	}
	s.putChain(c)
}

// chainDeadline fires at a chain's absolute end-to-end deadline and aborts
// it if it has not completed: the stale result is discarded and the
// actuator keeps its previous command, exactly the failure mode of
// Figure 3.
func (s *Scheduler) chainDeadline(c *chain) {
	if c.dead {
		return
	}
	c.dead = true
	if c.pendingEv != 0 {
		// A release held back by the guard or a link delay is still in
		// flight; cancel it before the chain is recycled.
		s.eng.Cancel(c.pendingEv)
		c.pendingEv = 0
	}
	if j := c.job; j != nil {
		s.ecus[s.sys.Subtask(j.ref).ECU].abort(j, s.eng.Now())
		c.job = nil
		s.putJob(j)
	}
	s.counters[c.task].Missed++
	if s.cfg.OnChain != nil {
		//lint:hookpoint chain observers are application callbacks (actuation, logging) outside the certified substrate
		s.cfg.OnChain(ChainEvent{
			Task: c.task, Instance: c.instance,
			Release: c.release, Deadline: c.deadline,
			Missed: true,
		})
	}
	s.putChain(c)
}

// chain is one live instance of an end-to-end task. Chains are recycled
// through the Scheduler's intrusive free list; a chain returns to the pool
// only when every engine event referencing it has fired or been cancelled.
type chain struct {
	s        *Scheduler
	task     taskmodel.TaskID
	instance uint64
	release  simtime.Time
	deadline simtime.Time
	period   simtime.Duration
	stage    int
	job      *job
	dead     bool
	// deadlineEv is the pending end-to-end deadline event, cancelled when
	// the chain completes.
	deadlineEv simtime.EventID
	// pendingEv is the in-flight delayed release (release guard or link
	// delay), or 0. pendingStage is the stage it will admit. At most one
	// release is pending per chain: stages progress strictly in order.
	pendingEv    simtime.EventID
	pendingStage int
	nextFree     *chain
	// poolIdx is this chain's stable position in the allChains registry,
	// assigned once at allocation. Snapshots encode chain cross-references
	// (job→chain, engine event args) as pool indices so a checkpoint can
	// be rebound to a different session's pools.
	poolIdx int32
}

// job is one released subtask instance awaiting or receiving CPU time.
// Jobs are recycled through the Scheduler's intrusive free list.
type job struct {
	chain     *chain
	ref       taskmodel.SubtaskRef
	release   simtime.Time
	remaining simtime.Duration
	priority  float64 // smaller = higher priority
	seq       uint64  // FIFO tie-break
	index     int     // position in the ready heap; -1 when not queued
	nextFree  *job
	// poolIdx is this job's stable position in the allJobs registry,
	// assigned once at allocation; see chain.poolIdx.
	poolIdx int32
}

func (j *job) String() string {
	return fmt.Sprintf("%v@%v", j.ref, j.release)
}
