package sched

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/autoe2e/autoe2e/internal/exectime"
	"github.com/autoe2e/autoe2e/internal/simtime"
	"github.com/autoe2e/autoe2e/internal/taskmodel"
	"github.com/autoe2e/autoe2e/internal/units"
)

// mustSystem validates sys or fails the test.
func mustSystem(t *testing.T, sys *taskmodel.System) *taskmodel.System {
	t.Helper()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// singleTask builds a 1-ECU system with one single-subtask task.
func singleTask(t *testing.T, execMs float64, rate units.Rate) *taskmodel.System {
	t.Helper()
	return mustSystem(t, &taskmodel.System{
		NumECUs:   1,
		UtilBound: []units.Util{1},
		Tasks: []*taskmodel.Task{{
			Name: "t1",
			Subtasks: []taskmodel.Subtask{
				{Name: "s", ECU: 0, NominalExec: simtime.FromMillis(execMs), MinRatio: 1, Weight: 1},
			},
			RateMin: rate, RateMax: rate,
		}},
	})
}

func TestPeriodicCompletion(t *testing.T) {
	sys := singleTask(t, 10, 10) // 10ms every 100ms: trivially feasible
	eng := simtime.NewEngine()
	var completions []simtime.Time
	s := New(eng, taskmodel.NewState(sys), Config{
		Exec: exectime.Nominal{},
		OnChain: func(ev ChainEvent) {
			if ev.Missed {
				t.Errorf("unexpected miss at %v", ev.Deadline)
			}
			completions = append(completions, ev.Completed)
		},
	})
	s.Start()
	eng.Run(simtime.At(1) - 1) // stop just before the release at t=1s
	c := s.Counter(0)
	if c.Released != 10 || c.Completed != 10 || c.Missed != 0 {
		t.Fatalf("counters = %+v, want 10/10/0", c)
	}
	for i, done := range completions {
		want := simtime.At(0.1 * float64(i)).Add(10 * simtime.Millisecond)
		if done != want {
			t.Errorf("completion %d = %v, want %v", i, done, want)
		}
	}
	if got := c.MissRatio(); got != 0 {
		t.Errorf("MissRatio = %v, want 0", got)
	}
}

func TestPreemptionTimeline(t *testing.T) {
	// T1: 10ms @ 50Hz (20ms subdeadline, high priority).
	// T2: 30ms @ 10Hz (100ms subdeadline, low priority).
	// T2's first instance must finish at exactly 60ms:
	// runs 10–20, 30–40, 50–60 with T1 occupying 0–10, 20–30, 40–50.
	sys := mustSystem(t, &taskmodel.System{
		NumECUs:   1,
		UtilBound: []units.Util{1},
		Tasks: []*taskmodel.Task{
			{
				Name:     "hi",
				Subtasks: []taskmodel.Subtask{{Name: "h", ECU: 0, NominalExec: simtime.FromMillis(10), MinRatio: 1, Weight: 1}},
				RateMin:  50, RateMax: 50,
			},
			{
				Name:     "lo",
				Subtasks: []taskmodel.Subtask{{Name: "l", ECU: 0, NominalExec: simtime.FromMillis(30), MinRatio: 1, Weight: 1}},
				RateMin:  10, RateMax: 10,
			},
		},
	})
	eng := simtime.NewEngine()
	var loDone, hiFirst simtime.Time
	s := New(eng, taskmodel.NewState(sys), Config{
		Exec: exectime.Nominal{},
		OnChain: func(ev ChainEvent) {
			if ev.Missed {
				t.Errorf("unexpected miss: %+v", ev)
			}
			if ev.Task == 1 && ev.Instance == 0 {
				loDone = ev.Completed
			}
			if ev.Task == 0 && ev.Instance == 0 {
				hiFirst = ev.Completed
			}
		},
	})
	s.Start()
	eng.Run(simtime.At(0.099))
	if hiFirst != simtime.Time(10*simtime.Millisecond) {
		t.Errorf("high-priority first completion = %v, want 10ms", hiFirst)
	}
	if loDone != simtime.Time(60*simtime.Millisecond) {
		t.Errorf("low-priority completion = %v, want 60ms (three preemptions)", loDone)
	}
}

func TestOverloadMissesAndAborts(t *testing.T) {
	// 30ms of demand every 20ms: every instance aborts at its deadline.
	sys := singleTask(t, 30, 50)
	eng := simtime.NewEngine()
	missed := 0
	s := New(eng, taskmodel.NewState(sys), Config{
		Exec: exectime.Nominal{},
		OnChain: func(ev ChainEvent) {
			if !ev.Missed {
				t.Errorf("instance completed under permanent overload: %+v", ev)
			}
			missed++
		},
	})
	s.Start()
	eng.Run(simtime.At(1) - 1)
	c := s.Counter(0)
	if c.Missed == 0 || c.Completed != 0 {
		t.Fatalf("counters = %+v, want all missed", c)
	}
	if got := c.MissRatio(); got != 1 {
		t.Errorf("MissRatio = %v, want 1", got)
	}
	if missed != int(c.Missed) {
		t.Errorf("OnChain missed count %d != counter %d", missed, c.Missed)
	}
	// The CPU never idles under overload: utilization saturates at 1.
	u := s.SampleUtilizations()
	if u[0] < 0.999 {
		t.Errorf("overloaded utilization = %v, want ~1", u[0])
	}
}

func TestUtilizationMonitor(t *testing.T) {
	// 10ms @ 50Hz + 30ms @ 10Hz = 0.5 + 0.3 = 0.8 utilization.
	sys := mustSystem(t, &taskmodel.System{
		NumECUs:   1,
		UtilBound: []units.Util{1},
		Tasks: []*taskmodel.Task{
			{
				Name:     "a",
				Subtasks: []taskmodel.Subtask{{Name: "a", ECU: 0, NominalExec: simtime.FromMillis(10), MinRatio: 1, Weight: 1}},
				RateMin:  50, RateMax: 50,
			},
			{
				Name:     "b",
				Subtasks: []taskmodel.Subtask{{Name: "b", ECU: 0, NominalExec: simtime.FromMillis(30), MinRatio: 1, Weight: 1}},
				RateMin:  10, RateMax: 10,
			},
		},
	})
	eng := simtime.NewEngine()
	s := New(eng, taskmodel.NewState(sys), Config{Exec: exectime.Nominal{}})
	s.Start()
	eng.Run(simtime.At(1))
	u := s.SampleUtilizations()
	if math.Abs(u[0].Float()-0.8) > 0.01 {
		t.Errorf("u = %v, want ~0.8", u[0])
	}
	// Second window must account only its own interval.
	eng.Run(simtime.At(2))
	u = s.SampleUtilizations()
	if math.Abs(u[0].Float()-0.8) > 0.01 {
		t.Errorf("second window u = %v, want ~0.8", u[0])
	}
}

func TestUtilizationPartialRunningJobCharged(t *testing.T) {
	// One 600ms job per second; sampling at 0.5s catches it mid-run.
	sys := singleTask(t, 600, 1)
	eng := simtime.NewEngine()
	s := New(eng, taskmodel.NewState(sys), Config{Exec: exectime.Nominal{}})
	s.Start()
	eng.Run(simtime.At(0.5))
	u := s.SampleUtilizations()
	if math.Abs(u[0].Float()-1.0) > 1e-9 {
		t.Errorf("first half window u = %v, want 1.0", u[0])
	}
	eng.Run(simtime.At(1) - 1)
	u = s.SampleUtilizations()
	// 100ms of remaining work in a ~500ms window.
	if math.Abs(u[0].Float()-0.2) > 0.01 {
		t.Errorf("second half window u = %v, want ~0.2", u[0])
	}
}

func TestChainAcrossECUs(t *testing.T) {
	sys := mustSystem(t, &taskmodel.System{
		NumECUs:   2,
		UtilBound: []units.Util{1, 1},
		Tasks: []*taskmodel.Task{{
			Name: "chain",
			Subtasks: []taskmodel.Subtask{
				{Name: "s1", ECU: 0, NominalExec: simtime.FromMillis(15), MinRatio: 1, Weight: 1},
				{Name: "s2", ECU: 1, NominalExec: simtime.FromMillis(10), MinRatio: 1, Weight: 1},
			},
			RateMin: 10, RateMax: 10,
		}},
	})
	eng := simtime.NewEngine()
	var first simtime.Time
	s := New(eng, taskmodel.NewState(sys), Config{
		Exec: exectime.Nominal{},
		OnChain: func(ev ChainEvent) {
			if ev.Instance == 0 {
				first = ev.Completed
			}
		},
	})
	s.Start()
	eng.Run(simtime.At(0.099))
	if first != simtime.Time(25*simtime.Millisecond) {
		t.Errorf("chain completion = %v, want 25ms (15 + 10)", first)
	}
}

func TestReleaseGuardSeparation(t *testing.T) {
	// Stage 1 takes 15ms for the first instance, then drops to 5ms. The
	// release guard must delay the second stage-2 release to lastRelease +
	// period even though its predecessor finished earlier.
	sys := mustSystem(t, &taskmodel.System{
		NumECUs:   2,
		UtilBound: []units.Util{1, 1},
		Tasks: []*taskmodel.Task{{
			Name: "chain",
			Subtasks: []taskmodel.Subtask{
				{Name: "s1", ECU: 0, NominalExec: simtime.FromMillis(15), MinRatio: 1, Weight: 1},
				{Name: "s2", ECU: 1, NominalExec: simtime.FromMillis(10), MinRatio: 1, Weight: 1},
			},
			RateMin: 10, RateMax: 10,
		}},
	})
	script := exectime.NewScript(exectime.Nominal{}, []exectime.Step{
		{Ref: taskmodel.SubtaskRef{Task: 0, Index: 0}, At: simtime.At(0.05), Factor: 1.0 / 3},
	})
	eng := simtime.NewEngine()
	var completions []simtime.Time
	s := New(eng, taskmodel.NewState(sys), Config{
		Exec:    script,
		OnChain: func(ev ChainEvent) { completions = append(completions, ev.Completed) },
	})
	s.Start()
	eng.Run(simtime.At(0.199))
	if len(completions) != 2 {
		t.Fatalf("completions = %v, want 2", completions)
	}
	// Instance 0: s1 0–15ms, s2 released 15ms, done 25ms.
	if completions[0] != simtime.Time(25*simtime.Millisecond) {
		t.Errorf("instance 0 completion = %v, want 25ms", completions[0])
	}
	// Instance 1: s1 100–105ms, but guard holds s2 until 15+100 = 115ms,
	// done 125ms. Without the guard it would complete at 115ms.
	if completions[1] != simtime.Time(125*simtime.Millisecond) {
		t.Errorf("instance 1 completion = %v, want 125ms (release guard)", completions[1])
	}
}

func TestLinkDelay(t *testing.T) {
	sys := mustSystem(t, &taskmodel.System{
		NumECUs:   2,
		UtilBound: []units.Util{1, 1},
		Tasks: []*taskmodel.Task{{
			Name: "chain",
			Subtasks: []taskmodel.Subtask{
				{Name: "s1", ECU: 0, NominalExec: simtime.FromMillis(10), MinRatio: 1, Weight: 1},
				{Name: "s2", ECU: 1, NominalExec: simtime.FromMillis(10), MinRatio: 1, Weight: 1},
			},
			RateMin: 10, RateMax: 10,
		}},
	})
	eng := simtime.NewEngine()
	var first simtime.Time
	s := New(eng, taskmodel.NewState(sys), Config{
		Exec: exectime.Nominal{},
		LinkDelay: func(from, to int) simtime.Duration {
			if from == 0 && to == 1 {
				return 5 * simtime.Millisecond
			}
			return 0
		},
		OnChain: func(ev ChainEvent) {
			if ev.Instance == 0 {
				first = ev.Completed
			}
		},
	})
	s.Start()
	eng.Run(simtime.At(0.099))
	if first != simtime.Time(25*simtime.Millisecond) {
		t.Errorf("chain completion = %v, want 25ms (10 + 5 bus + 10)", first)
	}
}

func TestRateChangeTakesEffectNextRelease(t *testing.T) {
	sys := mustSystem(t, &taskmodel.System{
		NumECUs:   1,
		UtilBound: []units.Util{1},
		Tasks: []*taskmodel.Task{{
			Name:     "t",
			Subtasks: []taskmodel.Subtask{{Name: "s", ECU: 0, NominalExec: simtime.Millisecond, MinRatio: 1, Weight: 1}},
			RateMin:  10, RateMax: 40,
		}},
	})
	eng := simtime.NewEngine()
	st := taskmodel.NewState(sys)
	s := New(eng, st, Config{Exec: exectime.Nominal{}})
	s.Start()
	eng.Schedule(simtime.At(0.05), func(simtime.Time) { st.SetRate(0, 20) })
	eng.Run(simtime.At(0.99))
	// Releases: t=0, t=0.1 (old period still in flight), then every 50ms:
	// 0.15, 0.20, ..., 0.95 → 1 + 1 + 17 = 19.
	if got := s.Counter(0).Released; got != 19 {
		t.Errorf("Released = %d, want 19", got)
	}
}

func TestRatioReducesDemand(t *testing.T) {
	sys := mustSystem(t, &taskmodel.System{
		NumECUs:   1,
		UtilBound: []units.Util{1},
		Tasks: []*taskmodel.Task{{
			Name:     "t",
			Subtasks: []taskmodel.Subtask{{Name: "s", ECU: 0, NominalExec: simtime.FromMillis(30), MinRatio: 0.3, Weight: 1}},
			RateMin:  50, RateMax: 50, // 30ms per 20ms period: infeasible at a=1
		}},
	})
	eng := simtime.NewEngine()
	st := taskmodel.NewState(sys)
	st.SetRatio(taskmodel.SubtaskRef{Task: 0, Index: 0}, 0.5) // 15ms per 20ms: feasible
	s := New(eng, st, Config{Exec: exectime.Nominal{}})
	s.Start()
	eng.Run(simtime.At(1) - 1)
	c := s.Counter(0)
	if c.Missed != 0 {
		t.Errorf("misses = %d at reduced precision, want 0", c.Missed)
	}
	u := s.SampleUtilizations()
	if math.Abs(u[0].Float()-0.75) > 0.01 {
		t.Errorf("u = %v, want ~0.75", u[0])
	}
}

func TestCounterArithmetic(t *testing.T) {
	a := TaskCounter{Released: 10, Completed: 7, Missed: 2}
	b := TaskCounter{Released: 4, Completed: 3, Missed: 1}
	d := a.Sub(b)
	if d != (TaskCounter{Released: 6, Completed: 4, Missed: 1}) {
		t.Errorf("Sub = %+v", d)
	}
	if got := d.MissRatio(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("MissRatio = %v, want 0.2", got)
	}
	if (TaskCounter{}).MissRatio() != 0 {
		t.Error("empty MissRatio should be 0")
	}
}

func TestStartTwicePanics(t *testing.T) {
	sys := singleTask(t, 1, 10)
	eng := simtime.NewEngine()
	s := New(eng, taskmodel.NewState(sys), Config{Exec: exectime.Nominal{}})
	s.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	s.Start()
}

func TestNilExecPanics(t *testing.T) {
	sys := singleTask(t, 1, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("nil Exec did not panic")
		}
	}()
	New(simtime.NewEngine(), taskmodel.NewState(sys), Config{})
}

// Property: for random feasible and infeasible task sets, the accounting is
// always conserved — Released == Completed + Missed + live (≤ 1 per task) —
// and utilizations stay in [0, 1].
func TestAccountingConservationProperty(t *testing.T) {
	if err := quick.Check(func(seed int64, execsRaw [3]uint8, ratesRaw [3]uint8) bool {
		tasks := make([]*taskmodel.Task, 0, 3)
		for i := 0; i < 3; i++ {
			execMs := 1 + float64(execsRaw[i]%40)
			rate := units.Rate(5 + float64(ratesRaw[i]%45))
			tasks = append(tasks, &taskmodel.Task{
				Name: "t",
				Subtasks: []taskmodel.Subtask{
					{Name: "a", ECU: i % 2, NominalExec: simtime.FromMillis(execMs), MinRatio: 1, Weight: 1},
					{Name: "b", ECU: (i + 1) % 2, NominalExec: simtime.FromMillis(execMs / 2), MinRatio: 1, Weight: 1},
				},
				RateMin: rate, RateMax: rate,
			})
		}
		sys := &taskmodel.System{NumECUs: 2, UtilBound: []units.Util{1, 1}, Tasks: tasks}
		if err := sys.Validate(); err != nil {
			return false
		}
		eng := simtime.NewEngine()
		s := New(eng, taskmodel.NewState(sys), Config{
			Exec: exectime.NewNoise(exectime.Nominal{}, 0.3, seed),
		})
		s.Start()
		eng.Run(simtime.At(3))
		for ti := range tasks {
			c := s.Counter(taskmodel.TaskID(ti))
			// With end-to-end deadlines of n periods, up to n pipelined
			// instances can be live at once.
			live := c.Released - c.Completed - c.Missed
			if live > uint64(len(tasks[ti].Subtasks)) {
				return false
			}
		}
		for _, u := range s.SampleUtilizations() {
			if u < 0 || u > 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
