package sched

import (
	"container/heap"

	"github.com/autoe2e/autoe2e/internal/simtime"
	"github.com/autoe2e/autoe2e/internal/units"
)

// ecuRunner simulates one preemptive fixed-priority processor. At any
// instant the highest-priority ready job runs; a release of a more urgent
// job preempts the running one, which keeps its remaining demand and
// returns to the ready queue.
type ecuRunner struct {
	sched *Scheduler
	id    int

	ready   readyHeap
	running *job
	// startedAt is when the running job last received the CPU.
	startedAt simtime.Time
	// completion is the pending completion event of the running job.
	completion simtime.EventID

	// busy accumulates CPU time used in the current monitoring window.
	busy       simtime.Duration
	lastSample simtime.Time
}

// enqueue admits a job and re-evaluates dispatch.
func (e *ecuRunner) enqueue(j *job, now simtime.Time) {
	heap.Push(&e.ready, j)
	e.dispatch(now)
}

// abort removes a job wherever it is (running or ready). The partially
// executed demand stays charged to the busy window: the CPU time was
// genuinely consumed, which is why overload drives measured utilization to
// one (Figure 8(a)).
func (e *ecuRunner) abort(j *job, now simtime.Time) {
	if e.running == j {
		e.haltRunning(now)
		e.dispatch(now)
		return
	}
	if j.index >= 0 {
		heap.Remove(&e.ready, j.index)
	}
}

// dispatch enforces the fixed-priority invariant after any queue change.
func (e *ecuRunner) dispatch(now simtime.Time) {
	if e.running != nil {
		if len(e.ready) == 0 || !e.ready[0].higherPriorityThan(e.running) {
			return
		}
		// Preempt: bank the progress and requeue. A job whose demand is
		// exactly exhausted at the preemption instant has finished — its
		// completion event is pending at this same timestamp but ordered
		// after the event that triggered this dispatch, so resolve it
		// here instead of requeueing it behind the preemptor (which
		// would misreport its completion time).
		preempted := e.haltRunning(now)
		if preempted.remaining == 0 {
			e.sched.jobFinished(preempted, now)
			e.dispatch(now)
			return
		}
		heap.Push(&e.ready, preempted)
	}
	if len(e.ready) == 0 {
		return
	}
	next := heap.Pop(&e.ready).(*job)
	e.running = next
	e.startedAt = now
	// Closure-free completion event: binding the method value e.complete
	// would allocate once per dispatch, which dominates the steady-state
	// allocation profile of a busy ECU.
	e.completion = e.sched.eng.ScheduleCall(now.Add(next.remaining), ecuCompleteEvent, e)
}

// ecuCompleteEvent is the pre-bound completion callback; arg is the
// *ecuRunner whose running job exhausted its demand.
func ecuCompleteEvent(now simtime.Time, arg any) {
	arg.(*ecuRunner).complete(now)
}

// haltRunning stops the running job, charging its elapsed CPU time and
// updating its remaining demand. It returns the halted job.
func (e *ecuRunner) haltRunning(now simtime.Time) *job {
	j := e.running
	elapsed := now.Sub(e.startedAt)
	j.remaining -= elapsed
	if j.remaining < 0 {
		j.remaining = 0
	}
	e.busy += elapsed
	e.sched.eng.Cancel(e.completion)
	e.running = nil
	return j
}

// complete fires when the running job's remaining demand is exhausted.
func (e *ecuRunner) complete(now simtime.Time) {
	j := e.running
	e.busy += now.Sub(e.startedAt)
	j.remaining = 0
	e.running = nil
	e.sched.jobFinished(j, now)
	e.dispatch(now)
}

// sampleWindow closes the current monitoring window and returns its busy
// fraction. A running job's partial progress is charged to the closing
// window.
func (e *ecuRunner) sampleWindow(now simtime.Time) units.Util {
	if e.running != nil {
		elapsed := now.Sub(e.startedAt)
		e.busy += elapsed
		e.running.remaining -= elapsed
		if e.running.remaining < 0 {
			e.running.remaining = 0
		}
		// Restart accounting from the sample instant; the completion
		// event already scheduled remains correct because remaining
		// was reduced by exactly the charged time.
		e.startedAt = now
	}
	window := now.Sub(e.lastSample)
	e.lastSample = now
	busy := e.busy
	e.busy = 0
	if window <= 0 {
		return 0
	}
	u := units.RawUtil(float64(busy) / float64(window))
	if u > 1 {
		u = 1 // guard against rounding at window edges
	}
	return u
}

// higherPriorityThan reports strict priority ordering between jobs: smaller
// subdeadline first, then earlier release, then admission order. The strict
// order makes preemption decisions deterministic.
func (j *job) higherPriorityThan(other *job) bool {
	//lint:allow floateq exact tie-break keeps the priority order total and deterministic
	if j.priority != other.priority {
		return j.priority < other.priority
	}
	if j.release != other.release {
		return j.release < other.release
	}
	return j.seq < other.seq
}

// readyHeap orders jobs by higherPriorityThan.
// reset clears all execution state for a new run: the ready queue, the
// running job, and the utilization-window accounting, which restarts at
// the given instant exactly as construction does.
func (e *ecuRunner) reset(now simtime.Time) {
	for i := range e.ready {
		e.ready[i] = nil
	}
	e.ready = e.ready[:0]
	e.running = nil
	e.startedAt = 0
	e.completion = 0
	e.busy = 0
	e.lastSample = now
}

type readyHeap []*job

func (h readyHeap) Len() int           { return len(h) }
func (h readyHeap) Less(i, j int) bool { return h[i].higherPriorityThan(h[j]) }
func (h readyHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *readyHeap) Push(x any) {
	j := x.(*job)
	j.index = len(*h)
	*h = append(*h, j)
}

func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.index = -1
	*h = old[:n-1]
	return j
}
