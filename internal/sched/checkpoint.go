package sched

import (
	"errors"

	"github.com/autoe2e/autoe2e/internal/simtime"
	"github.com/autoe2e/autoe2e/internal/taskmodel"
)

// Symbolic event-argument kinds owned by the scheduler; see
// simtime.EventArg. Kinds below 16 are reserved for the session layer.
const (
	argKindTaskArg uint8 = 16 + iota // Idx = task index into taskArgs
	argKindChain                     // Idx = chain pool index into allChains
	argKindECU                       // Idx = ECU id into ecus
)

// ErrUnknownEventArg reports a pending engine event whose argument the
// scheduler does not own (and the session layer did not claim either) —
// typically a closure or a co-simulation ticker, which cannot be rebound to
// another session.
var ErrUnknownEventArg = errors.New("sched: event argument is not a checkpointable type")

// EncodeEventArg translates a pending event's argument into its symbolic,
// session-independent form, reporting false for arguments the scheduler
// does not own.
func (s *Scheduler) EncodeEventArg(arg any) (simtime.EventArg, bool) {
	switch v := arg.(type) {
	case *taskArg:
		if v.s == s {
			return simtime.EventArg{Kind: argKindTaskArg, Idx: int32(v.ti)}, true
		}
	case *chain:
		if v.s == s {
			return simtime.EventArg{Kind: argKindChain, Idx: v.poolIdx}, true
		}
	case *ecuRunner:
		if v.sched == s {
			return simtime.EventArg{Kind: argKindECU, Idx: int32(v.id)}, true
		}
	}
	return simtime.EventArg{}, false
}

// DecodeEventArg is the inverse of EncodeEventArg against this scheduler's
// own pools, reporting false for kinds the scheduler does not own. The
// pools must already be restored (RestoreFrom) so every pool index resolves.
func (s *Scheduler) DecodeEventArg(a simtime.EventArg) (any, bool) {
	switch a.Kind {
	case argKindTaskArg:
		return &s.taskArgs[a.Idx], true
	case argKindChain:
		return s.allChains[a.Idx], true
	case argKindECU:
		return s.ecus[a.Idx], true
	}
	return nil, false
}

// Reconfigure swaps the behavioral configuration — execution-time model,
// link-delay model, chain observer, sync policy — without touching any
// execution state. Session.Resume uses it to install the continuation's
// models after Restore rebuilt the scheduler's state from a checkpoint.
func (s *Scheduler) Reconfigure(cfg Config) {
	if cfg.Exec == nil {
		panic("sched: Config.Exec is required") //lint:allow panicguard a nil execution model is a caller bug caught before any event fires
	}
	s.cfg = cfg
}

// chainCheckpoint is one captured chain object. Pointer fields travel as
// pool indices (-1 for nil).
type chainCheckpoint struct {
	task         taskmodel.TaskID
	instance     uint64
	release      simtime.Time
	deadline     simtime.Time
	period       simtime.Duration
	stage        int
	job          int32
	dead         bool
	deadlineEv   simtime.EventID
	pendingEv    simtime.EventID
	pendingStage int
	nextFree     int32
}

// jobCheckpoint is one captured job object.
type jobCheckpoint struct {
	chain     int32
	ref       taskmodel.SubtaskRef
	release   simtime.Time
	remaining simtime.Duration
	priority  float64
	seq       uint64
	index     int
	nextFree  int32
}

// ecuCheckpoint is one captured ECU runner. ready holds job pool indices in
// heap-array order; the heap invariant is positional, so copying the array
// restores it exactly.
type ecuCheckpoint struct {
	ready      []int32
	running    int32
	startedAt  simtime.Time
	completion simtime.EventID
	busy       simtime.Duration
	lastSample simtime.Time
}

// SchedulerCheckpoint is a deep copy of a Scheduler's complete execution
// state: per-task counters, release-guard state, the full chain and job
// pools with their free lists, and every ECU runner. Configuration (Exec,
// LinkDelay, OnChain) is deliberately not captured — models are functions
// that cannot be serialized and are re-supplied by Session.Resume — and
// structural fields (stageBase, taskArgs) are rebuilt from the system
// shape. A checkpoint holds no pointers into the captured scheduler, so it
// may be shared read-only across worker sessions.
type SchedulerCheckpoint struct {
	counters  []TaskCounter
	lastRel   []simtime.Time
	chains    []chainCheckpoint
	jobs      []jobCheckpoint
	freeChain int32
	freeJob   int32
	ecus      []ecuCheckpoint
	nextSeq   uint64
	started   bool
}

func chainIdx(c *chain) int32 {
	if c == nil {
		return -1
	}
	return c.poolIdx
}

func jobIdx(j *job) int32 {
	if j == nil {
		return -1
	}
	return j.poolIdx
}

// CaptureFrom overwrites cp with a deep copy of s's execution state,
// recycling cp's backing arrays so repeated snapshots are allocation-free
// at steady state.
func (cp *SchedulerCheckpoint) CaptureFrom(s *Scheduler) {
	cp.counters = append(cp.counters[:0], s.counters...)
	cp.lastRel = append(cp.lastRel[:0], s.lastRel...)
	cp.chains = cp.chains[:0]
	for _, c := range s.allChains {
		cp.chains = append(cp.chains, chainCheckpoint{
			task:         c.task,
			instance:     c.instance,
			release:      c.release,
			deadline:     c.deadline,
			period:       c.period,
			stage:        c.stage,
			job:          jobIdx(c.job),
			dead:         c.dead,
			deadlineEv:   c.deadlineEv,
			pendingEv:    c.pendingEv,
			pendingStage: c.pendingStage,
			nextFree:     chainIdx(c.nextFree),
		})
	}
	cp.jobs = cp.jobs[:0]
	for _, j := range s.allJobs {
		cp.jobs = append(cp.jobs, jobCheckpoint{
			chain:     chainIdx(j.chain),
			ref:       j.ref,
			release:   j.release,
			remaining: j.remaining,
			priority:  j.priority,
			seq:       j.seq,
			index:     j.index,
			nextFree:  jobIdx(j.nextFree),
		})
	}
	cp.freeChain = chainIdx(s.freeChain)
	cp.freeJob = jobIdx(s.freeJob)
	if cap(cp.ecus) < len(s.ecus) {
		grown := make([]ecuCheckpoint, len(s.ecus))
		copy(grown, cp.ecus[:cap(cp.ecus)])
		cp.ecus = grown
	}
	cp.ecus = cp.ecus[:len(s.ecus)]
	for i, e := range s.ecus {
		ec := &cp.ecus[i]
		ec.ready = ec.ready[:0]
		for _, j := range e.ready {
			ec.ready = append(ec.ready, j.poolIdx)
		}
		ec.running = jobIdx(e.running)
		ec.startedAt = e.startedAt
		ec.completion = e.completion
		ec.busy = e.busy
		ec.lastSample = e.lastSample
	}
	cp.nextSeq = s.nextSeq
	cp.started = s.started
}

// RestoreTo overwrites s's execution state with the checkpoint's. The
// destination must be built over the same system shape (same task/subtask/
// ECU layout; the session layer guarantees this). Pools grow as needed;
// surplus pooled objects a larger destination already owns are appended to
// the tails of the restored free lists, which changes which physical object
// a later allocation hands out but nothing observable — pooled objects have
// no identity beyond their fields, which the allocation sites fully
// initialize.
//
// The engine is restored separately (simtime.EngineCheckpoint): RestoreTo
// must run first so DecodeEventArg can resolve pool indices for the
// engine's pending events, and the EventIDs restored here (deadline,
// pending release, completion) stay valid because the engine checkpoint
// preserves slot generations.
func (cp *SchedulerCheckpoint) RestoreTo(s *Scheduler) {
	s.counters = append(s.counters[:0], cp.counters...)
	s.lastRel = append(s.lastRel[:0], cp.lastRel...)
	for len(s.allChains) < len(cp.chains) {
		s.allChains = append(s.allChains, &chain{s: s, poolIdx: int32(len(s.allChains))})
	}
	for len(s.allJobs) < len(cp.jobs) {
		s.allJobs = append(s.allJobs, &job{poolIdx: int32(len(s.allJobs))})
	}
	chainAt := func(i int32) *chain {
		if i < 0 {
			return nil
		}
		return s.allChains[i]
	}
	jobAt := func(i int32) *job {
		if i < 0 {
			return nil
		}
		return s.allJobs[i]
	}
	for i := range cp.chains {
		cc, c := &cp.chains[i], s.allChains[i]
		c.task = cc.task
		c.instance = cc.instance
		c.release = cc.release
		c.deadline = cc.deadline
		c.period = cc.period
		c.stage = cc.stage
		c.job = jobAt(cc.job)
		c.dead = cc.dead
		c.deadlineEv = cc.deadlineEv
		c.pendingEv = cc.pendingEv
		c.pendingStage = cc.pendingStage
		c.nextFree = chainAt(cc.nextFree)
	}
	for i := range cp.jobs {
		jc, j := &cp.jobs[i], s.allJobs[i]
		j.chain = chainAt(jc.chain)
		j.ref = jc.ref
		j.release = jc.release
		j.remaining = jc.remaining
		j.priority = jc.priority
		j.seq = jc.seq
		j.index = jc.index
		j.nextFree = jobAt(jc.nextFree)
	}
	s.freeChain = chainAt(cp.freeChain)
	s.freeJob = jobAt(cp.freeJob)
	// Surplus objects join the free-list tails so they stay reachable.
	if len(s.allChains) > len(cp.chains) {
		tail := &s.freeChain
		for *tail != nil {
			tail = &(*tail).nextFree
		}
		for _, c := range s.allChains[len(cp.chains):] {
			c.job = nil
			c.dead = false
			c.deadlineEv = 0
			c.pendingEv = 0
			c.pendingStage = 0
			c.nextFree = nil
			*tail = c
			tail = &c.nextFree
		}
	}
	if len(s.allJobs) > len(cp.jobs) {
		tail := &s.freeJob
		for *tail != nil {
			tail = &(*tail).nextFree
		}
		for _, j := range s.allJobs[len(cp.jobs):] {
			j.chain = nil
			j.index = -1
			j.nextFree = nil
			*tail = j
			tail = &j.nextFree
		}
	}
	for i, e := range s.ecus {
		ec := &cp.ecus[i]
		for k := range e.ready {
			e.ready[k] = nil
		}
		e.ready = e.ready[:0]
		for _, ji := range ec.ready {
			e.ready = append(e.ready, s.allJobs[ji])
		}
		e.running = jobAt(ec.running)
		e.startedAt = ec.startedAt
		e.completion = ec.completion
		e.busy = ec.busy
		e.lastSample = ec.lastSample
	}
	s.nextSeq = cp.nextSeq
	s.started = cp.started
}
