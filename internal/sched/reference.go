package sched

import (
	"container/heap"

	"github.com/autoe2e/autoe2e/internal/simtime"
	"github.com/autoe2e/autoe2e/internal/taskmodel"
	"github.com/autoe2e/autoe2e/internal/units"
)

// Reference is the retained naive scheduler: a fresh chain and job per
// release, a closure per scheduled event, and a map for the release-guard
// state. It issues exactly the same engine calls in exactly the same order
// as the pooled Scheduler, so the two produce byte-identical traces —
// chain events, utilization samples, counters — over any workload. The
// golden tests rely on that to certify the pooled substrate; Reference is
// never used on a hot path.
type Reference struct {
	eng   *simtime.Engine
	sys   *taskmodel.System
	state *taskmodel.State
	cfg   Config

	ecus     []*refECURunner
	lastRel  map[taskmodel.SubtaskRef]simtime.Time
	counters []TaskCounter
	nextSeq  uint64
	started  bool
}

// NewReference assembles the naive scheduler for the validated system at
// the given operating point. Call Start to schedule the initial releases.
func NewReference(eng *simtime.Engine, state *taskmodel.State, cfg Config) *Reference {
	if cfg.Exec == nil {
		panic("sched: Config.Exec is required")
	}
	sys := state.System()
	s := &Reference{
		eng:      eng,
		sys:      sys,
		state:    state,
		cfg:      cfg,
		lastRel:  make(map[taskmodel.SubtaskRef]simtime.Time),
		counters: make([]TaskCounter, len(sys.Tasks)),
	}
	s.ecus = make([]*refECURunner, sys.NumECUs)
	for j := range s.ecus {
		s.ecus[j] = &refECURunner{sched: s, id: j, lastSample: eng.Now()}
	}
	return s
}

// State returns the operating point the scheduler reads rates and ratios
// from.
func (s *Reference) State() *taskmodel.State { return s.state }

// Start schedules the first release of every task at the current instant.
// It must be called exactly once.
func (s *Reference) Start() {
	if s.started {
		panic("sched: Start called twice")
	}
	s.started = true
	for ti := range s.sys.Tasks {
		ti := taskmodel.TaskID(ti)
		s.eng.Schedule(s.eng.Now(), func(now simtime.Time) { s.releaseFirst(ti, now) })
	}
}

// Counters returns a snapshot of the cumulative per-task accounting.
func (s *Reference) Counters() []TaskCounter { return s.CountersInto(nil) }

// CountersInto writes the cumulative per-task accounting into dst, growing
// it if needed, and returns it.
func (s *Reference) CountersInto(dst []TaskCounter) []TaskCounter {
	if cap(dst) < len(s.counters) {
		dst = make([]TaskCounter, len(s.counters))
	}
	dst = dst[:len(s.counters)]
	copy(dst, s.counters)
	return dst
}

// Counter returns the cumulative accounting for one task.
func (s *Reference) Counter(i taskmodel.TaskID) TaskCounter { return s.counters[i] }

// SampleUtilizations returns each ECU's busy-time fraction since the
// previous call and starts a new window.
func (s *Reference) SampleUtilizations() []units.Util { return s.SampleUtilizationsInto(nil) }

// SampleUtilizationsInto is SampleUtilizations writing into dst, growing it
// if needed.
func (s *Reference) SampleUtilizationsInto(dst []units.Util) []units.Util {
	now := s.eng.Now()
	if cap(dst) < len(s.ecus) {
		dst = make([]units.Util, len(s.ecus))
	}
	dst = dst[:len(s.ecus)]
	for j, e := range s.ecus {
		dst[j] = e.sampleWindow(now)
	}
	return dst
}

// releaseFirst releases a new instance of task ti and schedules the next
// periodic release.
func (s *Reference) releaseFirst(ti taskmodel.TaskID, now simtime.Time) {
	period := s.state.Period(ti)
	n := len(s.sys.Tasks[ti].Subtasks)
	c := &refChain{
		task:     ti,
		instance: s.counters[ti].Released,
		release:  now,
		deadline: now.Add(period * simtime.Duration(n)),
		period:   period,
	}
	s.counters[ti].Released++
	// The deadline event aborts the chain if it has not completed. It is
	// scheduled before the next release so that, at equal timestamps, the
	// previous instance resolves before a new one starts.
	s.eng.Schedule(c.deadline, func(simtime.Time) { s.chainDeadline(c) })
	s.eng.Schedule(now.Add(period), func(next simtime.Time) { s.releaseFirst(ti, next) })
	s.releaseStage(c, 0, now)
}

// releaseStage releases subtask `stage` of chain c, honouring the release
// guard.
func (s *Reference) releaseStage(c *refChain, stage int, now simtime.Time) {
	ref := taskmodel.SubtaskRef{Task: c.task, Index: stage}
	at := now
	if s.cfg.Sync == SyncReleaseGuard || stage == 0 {
		if last, ok := s.lastRel[ref]; ok {
			if guard := last.Add(c.period); guard > at {
				at = guard
			}
		}
	}
	if at > now {
		s.eng.Schedule(at, func(t simtime.Time) { s.admitJob(c, stage, t) })
		return
	}
	s.admitJob(c, stage, now)
}

// admitJob creates the job for subtask `stage` of chain c and enqueues it
// on its ECU.
func (s *Reference) admitJob(c *refChain, stage int, now simtime.Time) {
	if c.dead {
		return // chain was aborted while the release was pending
	}
	ref := taskmodel.SubtaskRef{Task: c.task, Index: stage}
	s.lastRel[ref] = now
	sub := s.sys.Subtask(ref)
	demand := s.cfg.Exec.Demand(s.sys, ref, now, s.state.Ratio(ref))
	s.nextSeq++
	j := &refJob{
		chain:     c,
		ref:       ref,
		release:   now,
		remaining: demand,
		priority:  float64(c.period),
		seq:       s.nextSeq,
		index:     -1,
	}
	c.stage = stage
	c.job = j
	s.ecus[sub.ECU].enqueue(j, now)
}

// jobFinished is called by an ECU runner when a job runs to completion.
func (s *Reference) jobFinished(j *refJob, now simtime.Time) {
	c := j.chain
	if c.dead {
		return
	}
	c.job = nil
	next := c.stage + 1
	if next < len(s.sys.Tasks[c.task].Subtasks) {
		from := s.sys.Subtask(j.ref).ECU
		to := s.sys.Tasks[c.task].Subtasks[next].ECU
		var delay simtime.Duration
		if s.cfg.LinkDelay != nil {
			delay = s.cfg.LinkDelay(from, to)
		}
		if delay > 0 {
			s.eng.Schedule(now.Add(delay), func(t simtime.Time) {
				if !c.dead {
					s.releaseStage(c, next, t)
				}
			})
		} else {
			s.releaseStage(c, next, now)
		}
		return
	}
	// Last subtask done: the instance met its end-to-end deadline (the
	// deadline event observes c.dead and becomes a no-op).
	c.dead = true
	s.counters[c.task].Completed++
	if s.cfg.OnChain != nil {
		s.cfg.OnChain(ChainEvent{
			Task: c.task, Instance: c.instance,
			Release: c.release, Deadline: c.deadline,
			Completed: now, Missed: false,
		})
	}
}

// chainDeadline fires at a chain's absolute end-to-end deadline and aborts
// it if it has not completed.
func (s *Reference) chainDeadline(c *refChain) {
	if c.dead {
		return
	}
	c.dead = true
	if j := c.job; j != nil {
		s.ecus[s.sys.Subtask(j.ref).ECU].abort(j, s.eng.Now())
		c.job = nil
	}
	s.counters[c.task].Missed++
	if s.cfg.OnChain != nil {
		s.cfg.OnChain(ChainEvent{
			Task: c.task, Instance: c.instance,
			Release: c.release, Deadline: c.deadline,
			Missed: true,
		})
	}
}

// refChain is one live instance of an end-to-end task, freshly allocated
// per release and left for the garbage collector.
type refChain struct {
	task     taskmodel.TaskID
	instance uint64
	release  simtime.Time
	deadline simtime.Time
	period   simtime.Duration
	stage    int
	job      *refJob
	dead     bool
}

// refJob is one released subtask instance, freshly allocated per admission.
type refJob struct {
	chain     *refChain
	ref       taskmodel.SubtaskRef
	release   simtime.Time
	remaining simtime.Duration
	priority  float64 // smaller = higher priority
	seq       uint64  // FIFO tie-break
	index     int     // position in the ready heap; -1 when not queued
}

// refECURunner simulates one preemptive fixed-priority processor, mirroring
// ecuRunner with the allocating completion closure.
type refECURunner struct {
	sched *Reference
	id    int

	ready      refReadyHeap
	running    *refJob
	startedAt  simtime.Time
	completion simtime.EventID

	busy       simtime.Duration
	lastSample simtime.Time
}

// enqueue admits a job and re-evaluates dispatch.
func (e *refECURunner) enqueue(j *refJob, now simtime.Time) {
	heap.Push(&e.ready, j)
	e.dispatch(now)
}

// abort removes a job wherever it is (running or ready).
func (e *refECURunner) abort(j *refJob, now simtime.Time) {
	if e.running == j {
		e.haltRunning(now)
		e.dispatch(now)
		return
	}
	if j.index >= 0 {
		heap.Remove(&e.ready, j.index)
	}
}

// dispatch enforces the fixed-priority invariant after any queue change.
func (e *refECURunner) dispatch(now simtime.Time) {
	if e.running != nil {
		if len(e.ready) == 0 || !e.ready[0].higherPriorityThan(e.running) {
			return
		}
		preempted := e.haltRunning(now)
		if preempted.remaining == 0 {
			e.sched.jobFinished(preempted, now)
			e.dispatch(now)
			return
		}
		heap.Push(&e.ready, preempted)
	}
	if len(e.ready) == 0 {
		return
	}
	next := heap.Pop(&e.ready).(*refJob)
	e.running = next
	e.startedAt = now
	e.completion = e.sched.eng.Schedule(now.Add(next.remaining), e.complete)
}

// haltRunning stops the running job, charging its elapsed CPU time and
// updating its remaining demand.
func (e *refECURunner) haltRunning(now simtime.Time) *refJob {
	j := e.running
	elapsed := now.Sub(e.startedAt)
	j.remaining -= elapsed
	if j.remaining < 0 {
		j.remaining = 0
	}
	e.busy += elapsed
	e.sched.eng.Cancel(e.completion)
	e.running = nil
	return j
}

// complete fires when the running job's remaining demand is exhausted.
func (e *refECURunner) complete(now simtime.Time) {
	j := e.running
	e.busy += now.Sub(e.startedAt)
	j.remaining = 0
	e.running = nil
	e.sched.jobFinished(j, now)
	e.dispatch(now)
}

// sampleWindow closes the current monitoring window and returns its busy
// fraction.
func (e *refECURunner) sampleWindow(now simtime.Time) units.Util {
	if e.running != nil {
		elapsed := now.Sub(e.startedAt)
		e.busy += elapsed
		e.running.remaining -= elapsed
		if e.running.remaining < 0 {
			e.running.remaining = 0
		}
		e.startedAt = now
	}
	window := now.Sub(e.lastSample)
	e.lastSample = now
	busy := e.busy
	e.busy = 0
	if window <= 0 {
		return 0
	}
	u := units.RawUtil(float64(busy) / float64(window))
	if u > 1 {
		u = 1 // guard against rounding at window edges
	}
	return u
}

// higherPriorityThan mirrors job.higherPriorityThan.
func (j *refJob) higherPriorityThan(other *refJob) bool {
	//lint:allow floateq exact tie-break keeps the priority order total and deterministic
	if j.priority != other.priority {
		return j.priority < other.priority
	}
	if j.release != other.release {
		return j.release < other.release
	}
	return j.seq < other.seq
}

// refReadyHeap orders jobs by higherPriorityThan.
type refReadyHeap []*refJob

func (h refReadyHeap) Len() int           { return len(h) }
func (h refReadyHeap) Less(i, j int) bool { return h[i].higherPriorityThan(h[j]) }
func (h refReadyHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *refReadyHeap) Push(x any) {
	j := x.(*refJob)
	j.index = len(*h)
	*h = append(*h, j)
}

func (h *refReadyHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.index = -1
	*h = old[:n-1]
	return j
}
