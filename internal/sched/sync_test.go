package sched

import (
	"testing"

	"github.com/autoe2e/autoe2e/internal/exectime"
	"github.com/autoe2e/autoe2e/internal/simtime"
	"github.com/autoe2e/autoe2e/internal/taskmodel"
	"github.com/autoe2e/autoe2e/internal/units"
)

// guardSystem is the two-stage chain used by the release-guard tests: the
// first instance's stage 1 runs long (15 ms), later ones short (5 ms), so
// greedy and guarded synchronization visibly diverge at instance 1.
func guardSystem(t *testing.T) (*taskmodel.System, exectime.Model) {
	t.Helper()
	sys := mustSystem(t, &taskmodel.System{
		NumECUs:   2,
		UtilBound: []units.Util{1, 1},
		Tasks: []*taskmodel.Task{{
			Name: "chain",
			Subtasks: []taskmodel.Subtask{
				{Name: "s1", ECU: 0, NominalExec: simtime.FromMillis(15), MinRatio: 1, Weight: 1},
				{Name: "s2", ECU: 1, NominalExec: simtime.FromMillis(10), MinRatio: 1, Weight: 1},
			},
			RateMin: 10, RateMax: 10,
		}},
	})
	script := exectime.NewScript(exectime.Nominal{}, []exectime.Step{
		{Ref: taskmodel.SubtaskRef{Task: 0, Index: 0}, At: simtime.At(0.05), Factor: 1.0 / 3},
	})
	return sys, script
}

func TestGreedySyncReleasesImmediately(t *testing.T) {
	sys, script := guardSystem(t)
	eng := simtime.NewEngine()
	var completions []simtime.Time
	s := New(eng, taskmodel.NewState(sys), Config{
		Exec:    script,
		Sync:    SyncGreedy,
		OnChain: func(ev ChainEvent) { completions = append(completions, ev.Completed) },
	})
	s.Start()
	eng.Run(simtime.At(0.199))
	if len(completions) != 2 {
		t.Fatalf("completions = %v, want 2", completions)
	}
	// Instance 1: stage 1 finishes at 105 ms and stage 2 starts right
	// away, completing at 115 ms — 10 ms earlier than under the guard
	// (compare TestReleaseGuardSeparation).
	if completions[1] != simtime.Time(115*simtime.Millisecond) {
		t.Errorf("greedy instance 1 completion = %v, want 115ms", completions[1])
	}
}

// TestReleaseGuardSeparationProperty verifies the guard invariant across a
// noisy run: consecutive releases of every downstream subtask are separated
// by at least the task period. Release instants are observed through the
// execution-time model, whose Demand hook is called exactly at admission.
func TestReleaseGuardSeparationProperty(t *testing.T) {
	sys := mustSystem(t, &taskmodel.System{
		NumECUs:   2,
		UtilBound: []units.Util{1, 1},
		Tasks: []*taskmodel.Task{{
			Name: "chain",
			Subtasks: []taskmodel.Subtask{
				{Name: "s1", ECU: 0, NominalExec: simtime.FromMillis(20), MinRatio: 1, Weight: 1},
				{Name: "s2", ECU: 1, NominalExec: simtime.FromMillis(20), MinRatio: 1, Weight: 1},
			},
			RateMin: 10, RateMax: 10,
		}},
	})
	releases := map[taskmodel.SubtaskRef][]simtime.Time{}
	spy := releaseSpy{
		inner: exectime.NewNoise(exectime.Nominal{}, 0.4, 7),
		hook: func(ref taskmodel.SubtaskRef, now simtime.Time) {
			releases[ref] = append(releases[ref], now)
		},
	}
	eng := simtime.NewEngine()
	s := New(eng, taskmodel.NewState(sys), Config{Exec: spy})
	s.Start()
	eng.Run(simtime.At(5))
	period := 100 * simtime.Millisecond
	ref2 := taskmodel.SubtaskRef{Task: 0, Index: 1}
	rel := releases[ref2]
	if len(rel) < 20 {
		t.Fatalf("only %d downstream releases observed", len(rel))
	}
	for i := 1; i < len(rel); i++ {
		if sep := rel[i].Sub(rel[i-1]); sep < period {
			t.Fatalf("release guard violated: releases %v and %v only %v apart",
				rel[i-1], rel[i], sep)
		}
	}
}

// releaseSpy wraps an exec model and reports every Demand call (one per job
// admission).
type releaseSpy struct {
	inner exectime.Model
	hook  func(ref taskmodel.SubtaskRef, now simtime.Time)
}

func (r releaseSpy) Demand(sys *taskmodel.System, ref taskmodel.SubtaskRef, now simtime.Time, ratio units.Ratio) simtime.Duration {
	r.hook(ref, now)
	return r.inner.Demand(sys, ref, now, ratio)
}

// TestLinkDelayConsumesDeadlineBudget demonstrates the Section IV.E.1
// treatment: a chain whose stages nearly fill their subdeadlines tolerates
// a bus delay only while exec + delay fits the end-to-end budget.
func TestLinkDelayConsumesDeadlineBudget(t *testing.T) {
	build := func(delay simtime.Duration) *Scheduler {
		sys := mustSystem(t, &taskmodel.System{
			NumECUs:   2,
			UtilBound: []units.Util{1, 1},
			Tasks: []*taskmodel.Task{{
				Name: "tight chain",
				Subtasks: []taskmodel.Subtask{
					{Name: "s1", ECU: 0, NominalExec: simtime.FromMillis(80), MinRatio: 1, Weight: 1},
					{Name: "s2", ECU: 1, NominalExec: simtime.FromMillis(80), MinRatio: 1, Weight: 1},
				},
				RateMin: 10, RateMax: 10, // 100 ms periods, 200 ms E2E deadline
			}},
		})
		eng := simtime.NewEngine()
		s := New(eng, taskmodel.NewState(sys), Config{
			Exec:      exectime.Nominal{},
			LinkDelay: func(int, int) simtime.Duration { return delay },
		})
		s.Start()
		eng.Run(simtime.At(5))
		return s
	}
	// 80 + 30 + 80 = 190 ms ≤ 200 ms: no misses.
	if c := build(30 * simtime.Millisecond).Counter(0); c.Missed != 0 {
		t.Errorf("30ms delay: %d misses, want 0", c.Missed)
	}
	// 80 + 50 + 80 = 210 ms > 200 ms: every instance misses.
	if c := build(50 * simtime.Millisecond).Counter(0); c.Completed != 0 || c.Missed == 0 {
		t.Errorf("50ms delay: counters %+v, want all missed", c)
	}
}

// TestWorkConservation verifies the scheduler's accounting identity: the
// CPU time the monitor reports equals the demand actually executed (full
// demand of completed jobs plus the partial progress of aborted ones; no
// time invented, none lost).
func TestWorkConservation(t *testing.T) {
	sys := mustSystem(t, &taskmodel.System{
		NumECUs:   1,
		UtilBound: []units.Util{1},
		Tasks: []*taskmodel.Task{
			{
				Name:     "a",
				Subtasks: []taskmodel.Subtask{{Name: "a", ECU: 0, NominalExec: simtime.FromMillis(12), MinRatio: 1, Weight: 1}},
				RateMin:  40, RateMax: 40,
			},
			{
				Name:     "b",
				Subtasks: []taskmodel.Subtask{{Name: "b", ECU: 0, NominalExec: simtime.FromMillis(25), MinRatio: 1, Weight: 1}},
				RateMin:  20, RateMax: 20, // combined demand 0.98: heavy but mostly feasible
			},
		},
	})
	eng := simtime.NewEngine()
	s := New(eng, taskmodel.NewState(sys), Config{
		Exec: exectime.NewNoise(exectime.Nominal{}, 0.3, 3),
	})
	s.Start()
	horizon := 10.0
	eng.Run(simtime.At(horizon))
	u := s.SampleUtilizations()
	busy := u[0].Float() * horizon

	// Independently integrate demand: idle time observed = horizon − busy;
	// with demand ~0.98 ± noise and aborts, busy must sit in (0.9, 1].
	if busy <= 0.9*horizon*0.98 || busy > horizon {
		t.Errorf("busy time %v over horizon %v implausible", busy, horizon)
	}
	// The counters resolve every chain except at most one live per task.
	for ti, c := range s.Counters() {
		live := c.Released - c.Completed - c.Missed
		if live > uint64(len(sys.Tasks[ti].Subtasks)) {
			t.Errorf("task %d: %d unresolved chains", ti, live)
		}
	}
}
