// Command fleet reproduces the paper's larger-scale simulation (Figures 11
// and 12): the Figure 2 workload — 11 vehicle tasks over 6 ECUs including
// path tracking, adaptive cruise, stability control and the classic safety
// loops — under an acceleration profile that saturates the rate controller
// at 25 s and 37 s, followed by the deceleration/restoration experiment.
//
// The runs go through core.RunStream, the fleet-scale batch runner: configs
// are pulled on demand, executed on reusable per-worker sessions, and the
// outcomes stream back in input order. Results live in session-owned
// storage, so the callbacks either consume them on the spot or Clone the
// pieces a later comparison needs.
//
// Usage:
//
//	go run ./examples/fleet [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/autoe2e/autoe2e/internal/core"
	"github.com/autoe2e/autoe2e/internal/scenario"
	"github.com/autoe2e/autoe2e/internal/stats"
	"github.com/autoe2e/autoe2e/internal/trace"
)

// meanWindow averages a series over [from, to) seconds without copying the
// samples out.
func meanWindow(s *trace.Series, from, to float64) float64 {
	lo, hi := s.WindowBounds(from, to)
	return stats.Mean(s.V[lo:hi])
}

// streamConfigs runs every config over the batch runner and hands each
// result, in input order, to use. The *RunResult is only valid inside use.
func streamConfigs(cfgs []core.RunConfig, use func(i int, res *core.RunResult)) {
	i := 0
	next := func() (core.RunConfig, bool) {
		if i >= len(cfgs) {
			return core.RunConfig{}, false
		}
		cfg := cfgs[i]
		i++
		return cfg, true
	}
	core.RunStream(next, 0, func(j int, res *core.RunResult, err error) {
		if err != nil {
			log.Fatalf("run %d: %v", j, err)
		}
		use(j, res)
	})
}

func main() {
	seed := flag.Int64("seed", 1, "execution-time noise seed")
	flag.Parse()

	fmt.Println("=== Figure 11: acceleration on the 6-ECU / 11-task workload ===")
	modes := []core.Mode{core.ModeEUCON, core.ModeAutoE2E}
	results := map[core.Mode]*core.RunResult{}
	streamConfigs([]core.RunConfig{
		scenario.SimAcceleration(modes[0], *seed),
		scenario.SimAcceleration(modes[1], *seed),
	}, func(i int, res *core.RunResult) {
		mode := modes[i]
		fmt.Printf("\n%v — overall miss ratio %.3f, final precision %.2f (full 21.0)\n",
			mode, res.OverallMissRatio(), res.State.TotalPrecision())
		for j := 0; j < 6; j++ {
			s := res.Trace.Series(fmt.Sprintf("util.ecu%d", j))
			fmt.Printf("  ECU%d util %s  settled %.3f\n",
				j+1, trace.Sparkline(s, 48), meanWindow(s, 45, 60))
		}
		// The per-task comparison below needs both arms side by side;
		// clone before the session reuses the result's storage.
		results[mode] = res.Clone()
	})

	// The per-task damage concentrates on the autonomous applications the
	// overloaded ECU hosts.
	fmt.Println("\nper-task miss ratio after the 37s step (EUCON vs AutoE2E):")
	sys := results[core.ModeEUCON].State.System()
	for i := range sys.Tasks {
		name := fmt.Sprintf("missratio.t%d", i+1)
		me := meanWindow(results[core.ModeEUCON].Trace.Series(name), 45, 60)
		ma := meanWindow(results[core.ModeAutoE2E].Trace.Series(name), 45, 60)
		if me < 0.005 && ma < 0.005 {
			continue
		}
		fmt.Printf("  %-22s %6.3f vs %6.3f\n", sys.Tasks[i].Name, me, ma)
	}

	fmt.Println("\n=== Figure 12: deceleration and precision restoration ===")
	var restoredPrecision, directPrecision float64
	var precisionSpark string
	streamConfigs([]core.RunConfig{
		scenario.SimRestore(*seed),
		scenario.SimRestoreDirectIncrease(*seed, 0.1),
	}, func(i int, res *core.RunResult) {
		// Everything Figure 12 reports is extracted here, so neither
		// result needs to outlive its callback.
		if i == 0 {
			restoredPrecision = res.State.TotalPrecision()
			precisionSpark = trace.Sparkline(res.Trace.Series("precision.total"), 48)
		} else {
			directPrecision = res.State.TotalPrecision()
		}
	})
	optimal := scenario.SimOptimalPrecision()
	fmt.Printf("restorer        : final precision %.2f (%.1f%% below optimal %.2f)\n",
		restoredPrecision, (1-restoredPrecision/optimal)*100, optimal)
	fmt.Printf("direct increase : final precision %.2f\n", directPrecision)
	fmt.Printf("precision over time: %s\n", precisionSpark)
}
