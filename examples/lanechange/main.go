// Command lanechange reproduces the paper's Figure 10(a): a 1:16 scaled
// car performs a double lane change at 0.70 m/s while the road turns icy
// and the steering MPC's execution time doubles. Three middleware arms are
// compared — OPEN (static rates), EUCON (rate-only adaptation) and AutoE2E
// (rate + precision adaptation) — and the driven trajectories are written
// as CSV next to a terminal summary.
//
// Usage:
//
//	go run ./examples/lanechange [-seed N] [-csv trajectories.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/autoe2e/autoe2e/internal/core"
	"github.com/autoe2e/autoe2e/internal/vehicle/cosim"
)

func main() {
	seed := flag.Int64("seed", 1, "execution-time noise seed")
	csvPath := flag.String("csv", "", "write trajectories to this CSV file")
	flag.Parse()

	arms := []core.Mode{core.ModeOpen, core.ModeEUCON, core.ModeAutoE2E}
	results := make(map[core.Mode]*cosim.LaneChangeResult, len(arms))

	fmt.Println("double lane change, scaled car @ 0.70 m/s, icy road at t=2s (MPC exec ×2.3)")
	fmt.Printf("%-8s %12s %12s %12s\n", "arm", "max err (m)", "mean err (m)", "steer miss")
	for _, mode := range arms {
		res, err := cosim.LaneChange(cosim.LaneChangeConfig{Mode: mode, Seed: *seed})
		if err != nil {
			log.Fatalf("%v arm: %v", mode, err)
		}
		results[mode] = res
		fmt.Printf("%-8v %12.4f %12.4f %12.3f\n",
			mode, res.MaxAbsErr, res.MeanAbsErr, res.SteerMissRatio)
	}

	auto, eucon := results[core.ModeAutoE2E], results[core.ModeEUCON]
	fmt.Printf("\nAutoE2E tracks within %.1f cm; EUCON's max error is %.1f cm larger "+
		"(paper: 5 cm and +12 cm on the same maneuver).\n",
		auto.MaxAbsErr*100, (eucon.MaxAbsErr-auto.MaxAbsErr)*100)

	if *csvPath == "" {
		return
	}
	f, err := os.Create(*csvPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintln(f, "arm,t,x,y,ref_y,err")
	for _, mode := range arms {
		for _, s := range results[mode].Samples {
			fmt.Fprintf(f, "%v,%.3f,%.4f,%.4f,%.4f,%.4f\n", mode, s.T, s.X, s.Y, s.RefY, s.Err)
		}
	}
	fmt.Printf("trajectories written to %s\n", *csvPath)
}
