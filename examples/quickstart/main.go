// Command quickstart is the smallest complete AutoE2E program: it builds a
// two-ECU system with one adjustable perception-control pipeline and one
// fixed housekeeping task, runs the full two-tier middleware through a
// speed increase that saturates the rate controller, and prints what the
// middleware did about it.
package main

import (
	"fmt"
	"log"

	autoe2e "github.com/autoe2e/autoe2e"
)

func main() {
	// A minimal distributed system: a perception→actuation pipeline
	// spanning both ECUs, plus a fixed-rate housekeeping task.
	sys := &autoe2e.System{
		NumECUs: 2,
		// Leave headroom below the theoretical bounds, as a production
		// deployment would (the default is the per-ECU RMS bound).
		UtilBound: []autoe2e.Util{0.70, 0.75},
		Tasks: []*autoe2e.Task{
			{
				Name: "perception-control",
				Subtasks: []autoe2e.Subtask{
					// The perception stage can trade precision for time
					// (down to 40% of its full execution).
					{Name: "perceive", ECU: 0, NominalExec: autoe2e.FromMillis(15), MinRatio: 0.4, Weight: 2},
					{Name: "actuate", ECU: 1, NominalExec: autoe2e.FromMillis(5), MinRatio: 1, Weight: 1},
				},
				RateMin: 10, RateMax: 50,
			},
			{
				Name: "housekeeping",
				Subtasks: []autoe2e.Subtask{
					{Name: "log", ECU: 1, NominalExec: autoe2e.FromMillis(6), MinRatio: 1, Weight: 1},
				},
				RateMin: 5, RateMax: 40,
			},
		},
	}
	if err := sys.Validate(); err != nil {
		log.Fatalf("invalid system: %v", err)
	}
	fmt.Printf("system: %d ECUs, %d tasks, utilization bounds %v\n",
		sys.NumECUs, len(sys.Tasks), sys.UtilBound)

	res, err := autoe2e.Run(autoe2e.RunConfig{
		System: sys,
		// 5% execution-time noise around the offline estimates.
		Exec: autoe2e.NewNoise(autoe2e.Nominal{}, 0.05, 42),
		Middleware: autoe2e.Config{
			Mode:        autoe2e.ModeAutoE2E,
			InnerPeriod: autoe2e.Second,
			OuterEvery:  5,
		},
		Duration: 120 * autoe2e.Second,
		Events: []autoe2e.Event{
			// At t = 40 s the vehicle speeds up: the perception pipeline's
			// determined rate jumps to 48 Hz. At full precision that load
			// (15 ms · 48 Hz = 0.72) exceeds ECU0's 0.70 bound, so the
			// rate controller saturates and the outer loop must shed
			// precision.
			{At: autoe2e.At(40), Do: func(st *autoe2e.State) {
				st.SetRateFloor(0, 48)
			}},
			// At t = 80 s it slows down again; the restorer buys the
			// precision back.
			{At: autoe2e.At(80), Do: func(st *autoe2e.State) {
				st.SetRateFloor(0, 10)
			}},
		},
	})
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Printf("\noverall deadline miss ratio: %.4f\n", res.OverallMissRatio())
	for i, c := range res.Counters {
		fmt.Printf("  %-20s released %5d  completed %5d  missed %3d\n",
			sys.Tasks[i].Name, c.Released, c.Completed, c.Missed)
	}
	fmt.Printf("\nfinal computation precision: %.3f (full = 4.0)\n", res.State.TotalPrecision())
	fmt.Printf("final rates: %.1f Hz, %.1f Hz\n", res.State.Rate(0), res.State.Rate(1))

	fmt.Println("\nutilization and precision over time:")
	for _, name := range []string{"util.ecu0", "util.ecu1", "precision.total"} {
		fmt.Printf("  %-16s %s\n", name, sparkline(res, name))
	}
}

// sparkline renders one recorded series compactly with its value range.
func sparkline(res *autoe2e.RunResult, name string) string {
	s := res.Trace.Series(name)
	if s == nil {
		return "(missing)"
	}
	lo, hi := s.Values()[0], s.Values()[0]
	for _, v := range s.Values() {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return fmt.Sprintf("%s  [%.2f … %.2f]", autoe2e.Sparkline(s, 60), lo, hi)
}
