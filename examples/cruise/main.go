// Command cruise reproduces the paper's Figure 10(b): adaptive cruise
// control on the scaled car through a speed-reference profile while the
// control tasks' execution times grow. Deadline misses leave the motor
// command stale; the error is then corrected abruptly — the spikes the
// paper attributes to rate-only adaptation.
//
// Usage:
//
//	go run ./examples/cruise [-seed N] [-csv speeds.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/autoe2e/autoe2e/internal/core"
	"github.com/autoe2e/autoe2e/internal/vehicle/cosim"
)

func main() {
	seed := flag.Int64("seed", 1, "execution-time noise seed")
	csvPath := flag.String("csv", "", "write speed traces to this CSV file")
	flag.Parse()

	arms := []core.Mode{core.ModeOpen, core.ModeEUCON, core.ModeAutoE2E}
	results := make(map[core.Mode]*cosim.CruiseResult, len(arms))

	fmt.Println("adaptive cruise control, reference steps 0.7→1.2→0.5→0.9 m/s, icy road at t=2s")
	fmt.Printf("%-8s %12s %12s %14s %12s\n", "arm", "max err", "rms err", "cmd spike", "speed miss")
	for _, mode := range arms {
		res, err := cosim.Cruise(cosim.CruiseConfig{Mode: mode, Seed: *seed})
		if err != nil {
			log.Fatalf("%v arm: %v", mode, err)
		}
		results[mode] = res
		fmt.Printf("%-8v %12.4f %12.4f %14.4f %12.3f\n",
			mode, res.MaxAbsErr, res.RMSErr, res.MaxJerk, res.SpeedMissRatio)
	}

	auto, eucon := results[core.ModeAutoE2E], results[core.ModeEUCON]
	fmt.Printf("\nEUCON's steady-state command spikes are %.2fx AutoE2E's "+
		"(miss-induced corrections, harmful to mechanical parts per the paper).\n",
		ratio(eucon.MaxJerk, auto.MaxJerk))

	if *csvPath == "" {
		return
	}
	f, err := os.Create(*csvPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintln(f, "arm,t,v,ref,err")
	for _, mode := range arms {
		for _, s := range results[mode].Samples {
			fmt.Fprintf(f, "%v,%.3f,%.4f,%.4f,%.4f\n", mode, s.T, s.V, s.Ref, s.Err)
		}
	}
	fmt.Printf("speed traces written to %s\n", *csvPath)
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
